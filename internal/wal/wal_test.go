package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func mustCreate(t *testing.T, opts Options) (*WAL, string) {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "wal")
	w, err := Create(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return w, dir
}

func collect(t *testing.T, dir string, from uint64) []Record {
	t.Helper()
	var recs []Record
	if err := Replay(dir, from, func(r Record) error {
		recs = append(recs, r)
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return recs
}

func TestAppendSyncReplayRoundTrip(t *testing.T) {
	w, dir := mustCreate(t, Options{})
	for i := 0; i < 10; i++ {
		var lsn uint64
		var err error
		if i%2 == 0 {
			lsn, _, err = w.Commit(OpInsert, i, []float64{float64(i), 1.5, -2.25})
		} else {
			lsn, _, err = w.Commit(OpDelete, i-1, nil)
		}
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i+1) {
			t.Fatalf("lsn %d, want %d", lsn, i+1)
		}
	}
	if got := w.SyncedLSN(); got != 10 {
		t.Fatalf("synced %d, want 10", got)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	recs := collect(t, dir, 1)
	if len(recs) != 10 {
		t.Fatalf("replayed %d records, want 10", len(recs))
	}
	for i, r := range recs {
		if r.LSN != uint64(i+1) {
			t.Fatalf("record %d: lsn %d", i, r.LSN)
		}
		if i%2 == 0 {
			if r.Op != OpInsert || r.ID != i || len(r.Point) != 3 || r.Point[0] != float64(i) || r.Point[2] != -2.25 {
				t.Fatalf("record %d mismatched: %+v", i, r)
			}
		} else if r.Op != OpDelete || r.ID != i-1 || r.Point != nil {
			t.Fatalf("record %d mismatched: %+v", i, r)
		}
	}

	// fromLSN filters the already-checkpointed prefix.
	if tail := collect(t, dir, 8); len(tail) != 3 || tail[0].LSN != 8 {
		t.Fatalf("tail replay from 8: %+v", tail)
	}
}

func TestSegmentRollAndTruncateBefore(t *testing.T) {
	w, dir := mustCreate(t, Options{SegmentSize: 128})
	for i := 0; i < 40; i++ {
		if _, _, err := w.Commit(OpInsert, i, []float64{1, 2, 3, 4}); err != nil {
			t.Fatal(err)
		}
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected ≥3 segments after rolling, got %d", len(segs))
	}
	if recs := collect(t, dir, 1); len(recs) != 40 {
		t.Fatalf("replayed %d records across segments, want 40", len(recs))
	}

	// Checkpoint at LSN 20: segments entirely below 21 are reclaimable.
	if err := w.TruncateBefore(21); err != nil {
		t.Fatal(err)
	}
	after, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) >= len(segs) {
		t.Fatalf("truncate removed nothing: %d → %d segments", len(segs), len(after))
	}
	// Everything from the surviving segments' start replays intact.
	recs := collect(t, dir, after[0].firstLSN)
	if recs[len(recs)-1].LSN != 40 {
		t.Fatalf("last lsn %d, want 40", recs[len(recs)-1].LSN)
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].LSN != recs[i-1].LSN+1 {
			t.Fatalf("lsn gap after truncate: %d → %d", recs[i-1].LSN, recs[i].LSN)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestReopenContinuesChain(t *testing.T) {
	w, dir := mustCreate(t, Options{SegmentSize: 256})
	for i := 0; i < 25; i++ {
		if _, _, err := w.Commit(OpInsert, i, []float64{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := Open(dir, 0, Options{SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	if w2.LastLSN() != 25 || w2.SyncedLSN() != 25 {
		t.Fatalf("reopen: last=%d synced=%d, want 25/25", w2.LastLSN(), w2.SyncedLSN())
	}
	lsn, _, err := w2.Commit(OpDelete, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 26 {
		t.Fatalf("post-reopen lsn %d, want 26", lsn)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	recs := collect(t, dir, 1)
	if len(recs) != 26 || recs[25].Op != OpDelete || recs[25].ID != 3 {
		t.Fatalf("post-reopen replay: %d records, last %+v", len(recs), recs[len(recs)-1])
	}
}

// TestTornTailTolerated truncates the newest segment at every byte
// boundary inside the final record: replay and reopen must both settle on
// the whole-record prefix, and the reopened WAL must append cleanly.
func TestTornTailTolerated(t *testing.T) {
	w, dir := mustCreate(t, Options{})
	for i := 0; i < 3; i++ {
		if _, _, err := w.Commit(OpInsert, i, []float64{float64(i), 7}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segPath := filepath.Join(dir, segName(1))
	full, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	recLen := len(full) / 3

	for cut := len(full) - 1; cut > len(full)-recLen; cut-- {
		if err := os.WriteFile(segPath, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		recs := collect(t, dir, 1)
		if len(recs) != 2 {
			t.Fatalf("cut=%d: replayed %d records, want 2", cut, len(recs))
		}
		w2, err := Open(dir, 0, Options{})
		if err != nil {
			t.Fatalf("cut=%d: reopen: %v", cut, err)
		}
		if w2.LastLSN() != 2 {
			t.Fatalf("cut=%d: last lsn %d, want 2", cut, w2.LastLSN())
		}
		if _, _, err := w2.Commit(OpDelete, 0, nil); err != nil {
			t.Fatalf("cut=%d: append after torn-tail recovery: %v", cut, err)
		}
		if err := w2.Close(); err != nil {
			t.Fatal(err)
		}
		recs = collect(t, dir, 1)
		if len(recs) != 3 || recs[2].Op != OpDelete {
			t.Fatalf("cut=%d: after repair replayed %+v", cut, recs)
		}
		if err := os.WriteFile(segPath, full, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestZeroFilledTailTolerated emulates a filesystem that allocated blocks
// but lost the write: trailing zeros read as a torn tail, not corruption.
func TestZeroFilledTailTolerated(t *testing.T) {
	w, dir := mustCreate(t, Options{})
	for i := 0; i < 2; i++ {
		if _, _, err := w.Commit(OpInsert, i, []float64{1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segPath := filepath.Join(dir, segName(1))
	buf, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(segPath, append(buf, make([]byte, 64)...), 0o644); err != nil {
		t.Fatal(err)
	}
	if recs := collect(t, dir, 1); len(recs) != 2 {
		t.Fatalf("replayed %d, want 2", len(recs))
	}
	w2, err := Open(dir, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if w2.LastLSN() != 2 {
		t.Fatalf("last lsn %d, want 2", w2.LastLSN())
	}
	w2.Close()
}

// TestCorruptionRejected flips one byte in every interesting region and
// demands ErrCorrupt — never a silently shortened replay.
func TestCorruptionRejected(t *testing.T) {
	build := func(t *testing.T, segSize int64) string {
		w, dir := mustCreate(t, Options{SegmentSize: segSize})
		for i := 0; i < 12; i++ {
			if _, _, err := w.Commit(OpInsert, i, []float64{float64(i), 2, 3}); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return dir
	}

	t.Run("payload flip mid-segment", func(t *testing.T) {
		dir := build(t, 1<<20) // single segment
		segPath := filepath.Join(dir, segName(1))
		buf, _ := os.ReadFile(segPath)
		buf[len(buf)/2] ^= 0x40
		os.WriteFile(segPath, buf, 0o644)
		err := Replay(dir, 1, func(Record) error { return nil })
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("want ErrCorrupt, got %v", err)
		}
		if _, err := Open(dir, 0, Options{}); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("open: want ErrCorrupt, got %v", err)
		}
	})

	t.Run("length field flip", func(t *testing.T) {
		dir := build(t, 1<<20)
		segPath := filepath.Join(dir, segName(1))
		buf, _ := os.ReadFile(segPath)
		buf[0] ^= 0x04 // first record's payloadLen
		os.WriteFile(segPath, buf, 0o644)
		err := Replay(dir, 1, func(Record) error { return nil })
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("want ErrCorrupt, got %v", err)
		}
	})

	t.Run("short frame in sealed segment", func(t *testing.T) {
		dir := build(t, 64) // many sealed segments
		segs, err := listSegments(dir)
		if err != nil || len(segs) < 2 {
			t.Fatalf("need sealed segments: %v (%d)", err, len(segs))
		}
		segPath := filepath.Join(dir, segs[0].name)
		buf, _ := os.ReadFile(segPath)
		os.WriteFile(segPath, buf[:len(buf)-3], 0o644)
		err = Replay(dir, 1, func(Record) error { return nil })
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("want ErrCorrupt for sealed-segment tear, got %v", err)
		}
	})

	t.Run("missing segment breaks chain", func(t *testing.T) {
		dir := build(t, 64)
		segs, err := listSegments(dir)
		if err != nil || len(segs) < 3 {
			t.Fatalf("need ≥3 segments: %v (%d)", err, len(segs))
		}
		os.Remove(filepath.Join(dir, segs[1].name))
		err = Replay(dir, 1, func(Record) error { return nil })
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("want ErrCorrupt for missing segment, got %v", err)
		}
	})
}

// TestGroupCommit drives many concurrent committers and checks (a) every
// acknowledged record is durable and replayable, (b) the fsync count is
// far below the record count — the whole point of group commit.
func TestGroupCommit(t *testing.T) {
	w, dir := mustCreate(t, Options{})
	const (
		goroutines = 8
		perG       = 50
	)
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				_, durable, err := w.Commit(OpInsert, g*perG+i, []float64{float64(g), float64(i)})
				if err != nil {
					errs <- err
					return
				}
				if !durable {
					errs <- fmt.Errorf("SyncEvery=1 commit not durable at return")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if w.SyncedLSN() != goroutines*perG {
		t.Fatalf("synced %d, want %d", w.SyncedLSN(), goroutines*perG)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for _, r := range collect(t, dir, 1) {
		seen[r.ID] = true
	}
	if len(seen) != goroutines*perG {
		t.Fatalf("replayed %d unique ids, want %d", len(seen), goroutines*perG)
	}
}

func TestSyncEveryNAndInterval(t *testing.T) {
	w, _ := mustCreate(t, Options{SyncEvery: 8})
	var lastDurable bool
	for i := 0; i < 20; i++ {
		_, durable, err := w.Commit(OpInsert, i, []float64{1})
		if err != nil {
			t.Fatal(err)
		}
		lastDurable = durable
	}
	_ = lastDurable // durability under SyncEvery=N is best-effort between syncs
	if w.SyncedLSN() < 8 {
		t.Fatalf("SyncEvery=8 never synced: %d", w.SyncedLSN())
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if w.SyncedLSN() != 20 {
		t.Fatalf("explicit sync: %d, want 20", w.SyncedLSN())
	}
	w.Close()

	// Interval-only policy: the ticker must advance the watermark with no
	// commit-path syncs at all.
	w2, _ := mustCreate(t, Options{SyncEvery: -1, SyncInterval: 5 * time.Millisecond})
	if _, _, err := w2.Commit(OpInsert, 0, []float64{1}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for w2.SyncedLSN() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("SyncInterval ticker never synced")
		}
		time.Sleep(time.Millisecond)
	}
	w2.Close()
}

func TestCreateRefusesNonEmpty(t *testing.T) {
	w, dir := mustCreate(t, Options{})
	w.Close()
	if _, err := Create(dir, Options{}); err == nil {
		t.Fatal("Create over an existing WAL must fail")
	}
}

func TestClosedWAL(t *testing.T) {
	w, _ := mustCreate(t, Options{})
	w.Close()
	if _, _, err := w.Commit(OpInsert, 0, []float64{1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
	if err := w.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}
