// Package wal is a segmented, checksummed write-ahead log: the durability
// substrate under the sharded index's mutation path. Mutations are encoded
// as framed records, appended to the active segment, and made durable by
// group commit — any number of concurrent committers pile up behind one
// fsync, so the per-mutation durability cost is amortized across however
// many mutations arrived while the previous fsync was in flight.
//
// Record framing (little-endian), designed so that the two failure modes
// recovery must distinguish are structurally distinguishable:
//
//	u32 payloadLen | u32 headerCRC | u32 payloadCRC | payload
//	payload = u64 LSN | u8 op | op data
//
// headerCRC is the CRC32 of the payloadLen field alone. Because the length
// is independently checksummed, a torn write (the file simply ends early —
// the only tear real filesystems produce on an append-only file) is
// recognizable as a *truncated* frame: either fewer than 12 header bytes
// remain, or the verified length says more payload than the file holds.
// Anything else — a header whose own checksum fails, a fully present
// payload whose checksum fails, an LSN that breaks the monotonic chain —
// cannot be produced by a tear and is rejected as corruption. Torn tails
// are tolerated only at the very end of the newest segment; everywhere
// else a short frame is corruption too.
//
// Segments are named by the LSN of their first record (%016x.wal), sealed
// (fsynced, closed) when they pass SegmentSize, and deleted by
// TruncateBefore once a checkpoint covers them. LSNs start at 1 and
// increase by exactly 1 per record across segment boundaries, which is
// what lets replay verify it saw every record.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Op is the mutation type carried by one record.
type Op uint8

const (
	// OpInsert carries the assigned global id and the point's coordinates.
	OpInsert Op = 1
	// OpDelete carries the tombstoned global id.
	OpDelete Op = 2
)

// Record is one decoded WAL entry.
type Record struct {
	LSN   uint64
	Op    Op
	ID    int       // global id (assigned for inserts, tombstoned for deletes)
	Point []float64 // insert payload; nil for deletes
}

// Options tunes a WAL.
type Options struct {
	// SegmentSize is the byte threshold past which the active segment is
	// sealed and a fresh one started (0 = 8 MiB).
	SegmentSize int64
	// SyncEvery acknowledges a Commit only after the log is fsynced at
	// least every N records: 1 (and 0, the default) fsyncs every commit —
	// group-committed, so concurrent mutators still share one fsync; N > 1
	// lets up to N-1 acknowledged records ride in the OS cache between
	// fsyncs, trading a bounded crash window for throughput. Negative
	// never syncs on commit (rely on SyncInterval or explicit Sync calls).
	SyncEvery int
	// SyncInterval, when positive, runs a background fsync at that period
	// regardless of commit traffic.
	SyncInterval time.Duration
}

func (o Options) withDefaults() Options {
	if o.SegmentSize <= 0 {
		o.SegmentSize = 8 << 20
	}
	if o.SyncEvery == 0 {
		o.SyncEvery = 1
	}
	return o
}

// ErrCorrupt reports structurally invalid WAL contents that a torn write
// cannot explain — flipped bytes, broken LSN chains, short frames anywhere
// but the newest segment's tail. Recovery refuses to guess past it.
var ErrCorrupt = errors.New("wal: corrupt")

// ErrClosed reports use of a closed WAL.
var ErrClosed = errors.New("wal: closed")

const (
	headerSize    = 12
	maxRecordSize = 1 << 26 // 64 MiB payload cap: sanity bound on lengths
	segSuffix     = ".wal"
)

func segName(firstLSN uint64) string {
	return fmt.Sprintf("%016x%s", firstLSN, segSuffix)
}

// WAL is an append-only segmented log. All methods are safe for concurrent
// use.
type WAL struct {
	dir  string
	opts Options

	// mu guards the append path: the active file, its offset, and lastLSN.
	mu      sync.Mutex
	file    *os.File
	offset  int64
	lastLSN uint64 // highest LSN appended (not necessarily synced)
	sealed  int64  // bytes living in sealed (already fsynced) segments
	closed  bool

	// syncMu serializes fsyncs; syncedLSN advances under it. Committers
	// needing durability queue on syncMu — the first one in syncs the
	// whole pile (group commit), the rest observe syncedLSN ≥ their LSN
	// and return without touching the disk.
	syncMu    sync.Mutex
	syncedLSN atomic.Uint64

	stop chan struct{} // closes the SyncInterval ticker goroutine
	wg   sync.WaitGroup
}

// Create initializes an empty WAL in dir (created if absent, which must
// then stay reserved for the WAL). Fails if dir already holds segments.
func Create(dir string, opts Options) (*WAL, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	if len(segs) != 0 {
		return nil, fmt.Errorf("wal: %s already holds %d segments", dir, len(segs))
	}
	w := &WAL{dir: dir, opts: opts.withDefaults()}
	if err := w.openSegment(1); err != nil {
		return nil, err
	}
	w.startTicker()
	return w, nil
}

// Open recovers an existing WAL for appending: it replays every segment to
// find the end of the valid record chain, truncates a torn tail if the
// newest segment has one, and positions the next append after the last
// valid record. Records themselves are delivered through Replay; Open only
// establishes the write position. A WAL directory with no segments (all
// truncated away, or freshly created) is valid and starts at nextLSN.
func Open(dir string, nextLSN uint64, opts Options) (*WAL, error) {
	w := &WAL{dir: dir, opts: opts.withDefaults()}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		if nextLSN == 0 {
			nextLSN = 1
		}
		if err := w.openSegment(nextLSN); err != nil {
			return nil, err
		}
		w.startTicker()
		return w, nil
	}

	// Walk all segments to find the last valid record and the byte offset
	// it ends at in the final segment; scanSegment validates the chain.
	last := segs[len(segs)-1]
	for _, s := range segs[:len(segs)-1] {
		end, err := scanSegment(filepath.Join(dir, s.name), s.firstLSN, false, nil)
		if err != nil {
			return nil, err
		}
		if end.nextLSN != nextFirst(segs, s) {
			return nil, fmt.Errorf("%w: segment %s ends at lsn %d but %s begins at %d",
				ErrCorrupt, s.name, end.nextLSN-1, segName(nextFirst(segs, s)), nextFirst(segs, s))
		}
		w.sealed += end.offset
	}
	end, err := scanSegment(filepath.Join(dir, last.name), last.firstLSN, true, nil)
	if err != nil {
		return nil, err
	}
	prevLSN := end.nextLSN - 1

	path := filepath.Join(dir, last.name)
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	// Drop the torn tail so appended records start at a clean frame
	// boundary; the truncation is fsynced before any new append.
	if info, err := f.Stat(); err == nil && info.Size() > end.offset {
		if err := f.Truncate(end.offset); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, err
		}
	}
	if _, err := f.Seek(end.offset, 0); err != nil {
		f.Close()
		return nil, err
	}
	w.file = f
	w.offset = end.offset
	w.lastLSN = prevLSN
	w.syncedLSN.Store(prevLSN) // everything on disk at open is durable
	w.startTicker()
	return w, nil
}

func (w *WAL) startTicker() {
	if w.opts.SyncInterval <= 0 {
		return
	}
	w.stop = make(chan struct{})
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		t := time.NewTicker(w.opts.SyncInterval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				w.Sync() //nolint:errcheck // surfaced by the next Commit/Sync
			case <-w.stop:
				return
			}
		}
	}()
}

// openSegment creates the segment whose first record will carry firstLSN
// and makes it the active file. Caller holds mu (or owns w exclusively).
func (w *WAL) openSegment(firstLSN uint64) error {
	path := filepath.Join(w.dir, segName(firstLSN))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	// Persist the directory entry: a crash must not lose the file itself.
	if err := syncDir(w.dir); err != nil {
		f.Close()
		return err
	}
	w.file = f
	w.offset = 0
	w.lastLSN = firstLSN - 1
	return nil
}

// Append encodes rec (whose LSN is assigned here, not by the caller),
// writes it to the active segment, and returns the assigned LSN. The
// record is NOT durable until a Sync covering its LSN completes; use
// Commit for policy-driven durability.
func (w *WAL) Append(op Op, id int, point []float64) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, ErrClosed
	}
	lsn := w.lastLSN + 1
	frame := encodeRecord(lsn, op, id, point)
	if _, err := w.file.Write(frame); err != nil {
		return 0, err
	}
	w.lastLSN = lsn
	w.offset += int64(len(frame))
	if w.offset >= w.opts.SegmentSize {
		if err := w.seal(); err != nil {
			return lsn, err
		}
	}
	return lsn, nil
}

// seal fsyncs and closes the active segment and opens the next one. Caller
// holds mu. Everything in a sealed segment is durable, so syncedLSN
// advances to the sealed segment's last record.
func (w *WAL) seal() error {
	if err := w.file.Sync(); err != nil {
		return err
	}
	// Advance the watermark before Close: the fsync above made every
	// record in this segment durable, and a concurrent SyncTo whose
	// descriptor we are about to close must find the watermark already
	// past its target when its own Sync fails.
	w.advanceSynced(w.lastLSN)
	if err := w.file.Close(); err != nil {
		return err
	}
	w.sealed += w.offset
	return w.openSegment(w.lastLSN + 1)
}

// Commit appends the record and applies the durability policy via Ack.
// It returns the LSN and whether the record was durable at return.
func (w *WAL) Commit(op Op, id int, point []float64) (uint64, bool, error) {
	lsn, err := w.Append(op, id, point)
	if err != nil {
		return lsn, false, err
	}
	durable, err := w.Ack(lsn)
	return lsn, durable, err
}

// Ack applies the SyncEvery policy to an already-appended record: with
// SyncEvery ≤ 1 (treating 0 as the default 1) it returns only after an
// fsync covers the record — group commit, the fsync is usually someone
// else's; with SyncEvery = N it syncs once N records have accumulated
// since the last sync; negative SyncEvery never syncs here. It reports
// whether lsn was durable at return. Callers that append under their own
// mutex (the durable index) call Ack outside it, so mutators pile up into
// one shared fsync without blocking each other's appends.
func (w *WAL) Ack(lsn uint64) (bool, error) {
	switch {
	case w.opts.SyncEvery == 1:
		if err := w.SyncTo(lsn); err != nil {
			return false, err
		}
		return true, nil
	case w.opts.SyncEvery > 1:
		if lsn >= w.syncedLSN.Load()+uint64(w.opts.SyncEvery) {
			if err := w.SyncTo(lsn); err != nil {
				return false, err
			}
		}
		return w.syncedLSN.Load() >= lsn, nil
	default:
		return w.syncedLSN.Load() >= lsn, nil
	}
}

// Sync fsyncs the log through the most recently appended record. It is the
// group-commit entry point: concurrent callers share one fsync.
func (w *WAL) Sync() error {
	w.mu.Lock()
	target := w.lastLSN
	closed := w.closed
	w.mu.Unlock()
	if closed {
		return ErrClosed
	}
	return w.SyncTo(target)
}

// SyncTo blocks until syncedLSN ≥ target (an LSN returned by Append). It
// is the group-commit primitive: the first caller through syncMu performs
// one fsync that covers every record appended before it ran; callers that
// queued behind it find their target already durable and return without
// touching the disk.
func (w *WAL) SyncTo(target uint64) error {
	if w.syncedLSN.Load() >= target {
		return nil
	}
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	if w.syncedLSN.Load() >= target {
		return nil
	}
	w.mu.Lock()
	f, last, closed := w.file, w.lastLSN, w.closed
	w.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if err := f.Sync(); err != nil {
		// A concurrent seal may have closed f out from under us — but a
		// seal fsyncs first, so if the watermark now covers target the
		// durability we came for exists regardless of this error.
		if w.syncedLSN.Load() >= target {
			return nil
		}
		return err
	}
	// Records appended after we sampled lastLSN may or may not have hit
	// this fsync; advance only to what we know is covered.
	w.advanceSynced(last)
	return nil
}

// advanceSynced moves the durable watermark monotonically forward without
// a lock (seal runs under mu and must not take syncMu; see syncTo).
func (w *WAL) advanceSynced(lsn uint64) {
	for {
		cur := w.syncedLSN.Load()
		if cur >= lsn || w.syncedLSN.CompareAndSwap(cur, lsn) {
			return
		}
	}
}

// LastLSN returns the highest appended LSN (durable or not).
func (w *WAL) LastLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lastLSN
}

// SyncedLSN returns the highest LSN known durable.
func (w *WAL) SyncedLSN() uint64 { return w.syncedLSN.Load() }

// Size returns the total bytes across all live segments (sealed + active);
// the checkpointer's trigger metric.
func (w *WAL) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.sealed + w.offset
}

// TruncateBefore deletes sealed segments every record of which has LSN
// < lsn — storage made reclaimable by a checkpoint at lsn-1. The active
// segment is never deleted.
func (w *WAL) TruncateBefore(lsn uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	segs, err := listSegments(w.dir)
	if err != nil {
		return err
	}
	var freed int64
	// Segment i's records are [firstLSN_i, firstLSN_{i+1}); the newest
	// segment is active and always kept.
	for i := 0; i+1 < len(segs); i++ {
		if segs[i+1].firstLSN > lsn {
			break
		}
		path := filepath.Join(w.dir, segs[i].name)
		info, serr := os.Stat(path)
		if serr == nil {
			freed += info.Size()
		}
		if err := os.Remove(path); err != nil {
			return err
		}
	}
	w.sealed -= freed
	return syncDir(w.dir)
}

// Close fsyncs and closes the WAL. Appended records become durable.
func (w *WAL) Close() error {
	if w.stop != nil {
		close(w.stop)
		w.wg.Wait()
		w.stop = nil
	}
	if err := w.Sync(); err != nil && !errors.Is(err, ErrClosed) {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	return w.file.Close()
}

// Replay streams every valid record with LSN ≥ fromLSN, in LSN order,
// through fn; fn returning an error aborts the replay with that error. A
// torn tail in the newest segment ends the replay cleanly; corruption
// anywhere else returns ErrCorrupt. Replay of a live WAL observes records
// appended before the call; do not replay while appending.
func Replay(dir string, fromLSN uint64, fn func(Record) error) error {
	segs, err := listSegments(dir)
	if err != nil {
		return err
	}
	for i, s := range segs {
		final := i == len(segs)-1
		end, err := scanSegment(filepath.Join(dir, s.name), s.firstLSN, final, func(r Record) error {
			if r.LSN < fromLSN {
				return nil
			}
			return fn(r)
		})
		if err != nil {
			return err
		}
		if !final && end.nextLSN != segs[i+1].firstLSN {
			return fmt.Errorf("%w: segment %s ends at lsn %d but %s begins at %d",
				ErrCorrupt, s.name, end.nextLSN-1, segs[i+1].name, segs[i+1].firstLSN)
		}
	}
	return nil
}

type segment struct {
	name     string
	firstLSN uint64
}

func nextFirst(segs []segment, s segment) uint64 {
	for i := range segs {
		if segs[i].name == s.name && i+1 < len(segs) {
			return segs[i+1].firstLSN
		}
	}
	return 0
}

// listSegments returns dir's segments sorted by first LSN.
func listSegments(dir string) ([]segment, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segment
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || filepath.Ext(name) != segSuffix {
			continue
		}
		var first uint64
		if _, err := fmt.Sscanf(name, "%016x.wal", &first); err != nil || first == 0 {
			return nil, fmt.Errorf("%w: unrecognized segment name %q", ErrCorrupt, name)
		}
		segs = append(segs, segment{name: name, firstLSN: first})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].firstLSN < segs[j].firstLSN })
	for i := 1; i < len(segs); i++ {
		if segs[i].firstLSN == segs[i-1].firstLSN {
			return nil, fmt.Errorf("%w: duplicate segment lsn %d", ErrCorrupt, segs[i].firstLSN)
		}
	}
	return segs, nil
}

// scanEnd is where a segment's valid record chain stops.
type scanEnd struct {
	offset  int64  // byte offset just past the last valid record
	nextLSN uint64 // LSN the next record would carry
}

// scanSegment walks one segment's records, verifying framing, checksums,
// and the LSN chain (first record must carry firstLSN, then +1 each). fn,
// when non-nil, receives each valid record. tornOK tolerates an incomplete
// trailing frame (the newest segment only); a short frame elsewhere, or
// any checksum/chain violation, is ErrCorrupt.
func scanSegment(path string, firstLSN uint64, tornOK bool, fn func(Record) error) (scanEnd, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return scanEnd{}, err
	}
	off := int64(0)
	lsn := firstLSN
	for {
		rest := buf[off:]
		if len(rest) == 0 {
			return scanEnd{offset: off, nextLSN: lsn}, nil
		}
		if len(rest) < headerSize {
			return tornTail(path, off, lsn, tornOK, "truncated frame header")
		}
		payloadLen := binary.LittleEndian.Uint32(rest[0:4])
		headerCRC := binary.LittleEndian.Uint32(rest[4:8])
		payloadCRC := binary.LittleEndian.Uint32(rest[8:12])
		if crc32.ChecksumIEEE(rest[0:4]) != headerCRC {
			// The length field itself is damaged: a tear cannot do this
			// (it only shortens the file), except by cutting the header
			// mid-way — and that case was caught above. Zero-filled tails
			// (filesystems that allocate but lose the write) are the one
			// benign shape: all-zero remainder counts as torn.
			if tornOK && allZero(rest) {
				return tornTail(path, off, lsn, tornOK, "zero-filled tail")
			}
			return scanEnd{}, fmt.Errorf("%w: %s: record lsn %d at offset %d: header checksum mismatch",
				ErrCorrupt, filepath.Base(path), lsn, off)
		}
		if payloadLen < 9 || payloadLen > maxRecordSize {
			return scanEnd{}, fmt.Errorf("%w: %s: record lsn %d at offset %d: implausible length %d",
				ErrCorrupt, filepath.Base(path), lsn, off, payloadLen)
		}
		if len(rest) < headerSize+int(payloadLen) {
			// Verified length, missing payload bytes: a genuine torn
			// append (the write stopped partway through the frame).
			return tornTail(path, off, lsn, tornOK, "truncated frame payload")
		}
		payload := rest[headerSize : headerSize+int(payloadLen)]
		if crc32.ChecksumIEEE(payload) != payloadCRC {
			return scanEnd{}, fmt.Errorf("%w: %s: record lsn %d at offset %d: payload checksum mismatch",
				ErrCorrupt, filepath.Base(path), lsn, off)
		}
		rec, err := decodePayload(payload)
		if err != nil {
			return scanEnd{}, fmt.Errorf("%w: %s: record at offset %d: %v",
				ErrCorrupt, filepath.Base(path), off, err)
		}
		if rec.LSN != lsn {
			return scanEnd{}, fmt.Errorf("%w: %s: record at offset %d carries lsn %d, chain expects %d",
				ErrCorrupt, filepath.Base(path), off, rec.LSN, lsn)
		}
		if fn != nil {
			if err := fn(rec); err != nil {
				return scanEnd{}, err
			}
		}
		off += int64(headerSize + int(payloadLen))
		lsn++
	}
}

// tornTail resolves an incomplete trailing frame: tolerated (the scan ends
// at the last whole record) only in the newest segment.
func tornTail(path string, off int64, lsn uint64, tornOK bool, why string) (scanEnd, error) {
	if tornOK {
		return scanEnd{offset: off, nextLSN: lsn}, nil
	}
	return scanEnd{}, fmt.Errorf("%w: %s: %s at offset %d (lsn %d) in a sealed segment",
		ErrCorrupt, filepath.Base(path), why, off, lsn)
}

func allZero(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}

// encodeRecord frames one record.
func encodeRecord(lsn uint64, op Op, id int, point []float64) []byte {
	payloadLen := 8 + 1 + 8 // lsn + op + id
	if op == OpInsert {
		payloadLen += 4 + 8*len(point)
	}
	frame := make([]byte, headerSize+payloadLen)
	binary.LittleEndian.PutUint32(frame[0:4], uint32(payloadLen))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(frame[0:4]))
	p := frame[headerSize:]
	binary.LittleEndian.PutUint64(p[0:8], lsn)
	p[8] = byte(op)
	binary.LittleEndian.PutUint64(p[9:17], uint64(int64(id)))
	if op == OpInsert {
		binary.LittleEndian.PutUint32(p[17:21], uint32(len(point)))
		for i, v := range point {
			binary.LittleEndian.PutUint64(p[21+8*i:29+8*i], math.Float64bits(v))
		}
	}
	binary.LittleEndian.PutUint32(frame[8:12], crc32.ChecksumIEEE(p))
	return frame
}

// decodePayload parses a checksum-verified payload.
func decodePayload(p []byte) (Record, error) {
	if len(p) < 17 {
		return Record{}, fmt.Errorf("payload %d bytes, want ≥ 17", len(p))
	}
	rec := Record{
		LSN: binary.LittleEndian.Uint64(p[0:8]),
		Op:  Op(p[8]),
		ID:  int(int64(binary.LittleEndian.Uint64(p[9:17]))),
	}
	switch rec.Op {
	case OpDelete:
		if len(p) != 17 {
			return Record{}, fmt.Errorf("delete payload %d bytes, want 17", len(p))
		}
	case OpInsert:
		if len(p) < 21 {
			return Record{}, fmt.Errorf("insert payload %d bytes, want ≥ 21", len(p))
		}
		dim := int(binary.LittleEndian.Uint32(p[17:21]))
		if dim < 0 || len(p) != 21+8*dim {
			return Record{}, fmt.Errorf("insert payload %d bytes, dim %d wants %d", len(p), dim, 21+8*dim)
		}
		rec.Point = make([]float64, dim)
		for i := range rec.Point {
			rec.Point[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[21+8*i : 29+8*i]))
		}
	default:
		return Record{}, fmt.Errorf("unknown op %d", rec.Op)
	}
	return rec, nil
}

// syncDir fsyncs a directory so entry creations/removals are durable.
func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := f.Sync()
	cerr := f.Close()
	if serr != nil {
		return serr
	}
	return cerr
}
