package wal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALReplay throws arbitrary bytes at the segment scanner as the
// newest (torn-tail-tolerant) segment and checks the recovery contract:
// never panic, never accept a record stream that is not a valid LSN chain,
// and classify everything as either a clean prefix or ErrCorrupt. Seeds
// include well-formed streams so mutations of valid frames — flipped
// checksums, shortened tails, spliced records — get explored, not just
// noise.
func FuzzWALReplay(f *testing.F) {
	// Seed 1: empty segment.
	f.Add([]byte{})
	// Seed 2: a clean three-record stream.
	var clean []byte
	clean = append(clean, encodeRecord(1, OpInsert, 0, []float64{1.5, -2.5})...)
	clean = append(clean, encodeRecord(2, OpDelete, 0, nil)...)
	clean = append(clean, encodeRecord(3, OpInsert, 1, []float64{3.25})...)
	f.Add(clean)
	// Seed 3: clean stream with a torn final record.
	f.Add(clean[:len(clean)-5])
	// Seed 4: zero-filled tail after valid records.
	f.Add(append(append([]byte{}, clean...), make([]byte, 40)...))
	// Seed 5: an LSN gap (record 3 where 2 belongs).
	var gap []byte
	gap = append(gap, encodeRecord(1, OpInsert, 0, []float64{1})...)
	gap = append(gap, encodeRecord(3, OpInsert, 1, []float64{2})...)
	f.Add(gap)
	// Seed 6: flipped payload byte in the middle record.
	flipped := append([]byte{}, clean...)
	flipped[len(flipped)/2] ^= 0x80
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		var recs []Record
		err := Replay(dir, 1, func(r Record) error {
			recs = append(recs, r)
			return nil
		})
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("non-ErrCorrupt failure: %v", err)
			}
			return
		}
		// Accepted streams must be a strict LSN chain from the segment's
		// first LSN, and re-encoding each record must reproduce the exact
		// bytes the scanner consumed — the format round-trips.
		var reenc []byte
		for i, r := range recs {
			if r.LSN != uint64(i+1) {
				t.Fatalf("accepted broken chain: record %d has lsn %d", i, r.LSN)
			}
			if r.Op != OpInsert && r.Op != OpDelete {
				t.Fatalf("accepted unknown op %d", r.Op)
			}
			reenc = append(reenc, encodeRecord(r.LSN, r.Op, r.ID, r.Point)...)
		}
		if len(reenc) > len(data) || !bytes.Equal(reenc, data[:len(reenc)]) {
			// NaN payload bits are the one legitimate non-identity: Go
			// normalizes NaN patterns through float64 round-trips. Accept
			// length match with differing bits only when floats exist.
			if len(reenc) > len(data) {
				t.Fatalf("scanner accepted %d bytes but file has %d", len(reenc), len(data))
			}
			for _, r := range recs {
				if r.Op == OpInsert && len(r.Point) > 0 {
					return // float bit patterns may differ (NaN payloads)
				}
			}
			t.Fatalf("accepted stream does not round-trip")
		}
		// The accepted prefix must reopen for appending at the right LSN.
		w, err := Open(dir, 0, Options{})
		if err != nil {
			t.Fatalf("accepted stream failed Open: %v", err)
		}
		if w.LastLSN() != uint64(len(recs)) {
			t.Fatalf("Open found %d records, Replay found %d", w.LastLSN(), len(recs))
		}
		w.Close()
	})
}
