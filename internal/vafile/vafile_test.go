package vafile

import (
	"math"
	"math/rand"
	"testing"

	"brepartition/internal/bregman"
	"brepartition/internal/disk"
	"brepartition/internal/scan"
)

func points(div bregman.Divergence, n, d int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	lo, _ := div.Domain()
	positive := !math.IsInf(lo, -1)
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, d)
		for j := range p {
			if positive {
				p[j] = 0.1 + 4*rng.Float64()
			} else {
				p[j] = 3 * (rng.Float64() - 0.5)
			}
		}
		pts[i] = p
	}
	return pts
}

var divs = []bregman.Divergence{
	bregman.SquaredEuclidean{},
	bregman.ItakuraSaito{},
	bregman.Exponential{},
	bregman.GeneralizedKL{},
}

func build(tb testing.TB, div bregman.Divergence, pts [][]float64, bits int) *Index {
	tb.Helper()
	idx, err := Build(div, pts, Config{Bits: bits, Disk: disk.Config{PageSize: 1 << 10}})
	if err != nil {
		tb.Fatal(err)
	}
	return idx
}

func TestSearchExactAllDivergences(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, div := range divs {
		pts := points(div, 500, 10, 2)
		idx := build(t, div, pts, 6)
		for trial := 0; trial < 10; trial++ {
			q := pts[rng.Intn(len(pts))]
			k := 1 + rng.Intn(12)
			got, _ := idx.Search(q, k)
			want := scan.KNN(div, pts, q, k)
			for i := range want {
				if math.Abs(got[i].Score-want[i].Score) > 1e-9*(1+want[i].Score) {
					t.Fatalf("%s k=%d pos %d: got %g want %g",
						div.Name(), k, i, got[i].Score, want[i].Score)
				}
			}
		}
	}
}

func TestMoreBitsFewerCandidates(t *testing.T) {
	div := bregman.SquaredEuclidean{}
	pts := points(div, 2000, 8, 3)
	coarse := build(t, div, pts, 3)
	fine := build(t, div, pts, 9)
	q := pts[11]
	_, stCoarse := coarse.Search(q, 10)
	_, stFine := fine.Search(q, 10)
	if stFine.Candidates > stCoarse.Candidates {
		t.Fatalf("finer quantization produced more candidates: %d > %d",
			stFine.Candidates, stCoarse.Candidates)
	}
	if stFine.Candidates >= 2000 {
		t.Fatal("9-bit VA-file should prune something")
	}
}

func TestStatsAccounting(t *testing.T) {
	div := bregman.Exponential{}
	pts := points(div, 300, 6, 4)
	idx := build(t, div, pts, 6)
	_, st := idx.Search(pts[0], 5)
	if st.Candidates <= 0 || st.Candidates > 300 {
		t.Fatalf("candidates = %d", st.Candidates)
	}
	if st.PageReads <= 0 {
		t.Fatal("VA-file scan must cost at least the approximation pages")
	}
	if st.DistanceComps != st.Candidates {
		t.Fatalf("distance comps %d != candidates %d", st.DistanceComps, st.Candidates)
	}
}

func TestBuildRejectsEmpty(t *testing.T) {
	if _, err := Build(bregman.SquaredEuclidean{}, nil, Config{Disk: disk.Config{PageSize: 1024}}); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func TestBitsClamped(t *testing.T) {
	div := bregman.SquaredEuclidean{}
	pts := points(div, 50, 4, 5)
	idx, err := Build(div, pts, Config{Bits: 99, Disk: disk.Config{PageSize: 1024}})
	if err != nil {
		t.Fatal(err)
	}
	if idx.va.bits > 16 {
		t.Fatalf("bits = %d", idx.va.bits)
	}
	idx2, err := Build(div, pts, Config{Bits: 0, Disk: disk.Config{PageSize: 1024}})
	if err != nil {
		t.Fatal(err)
	}
	if idx2.va.bits != 6 {
		t.Fatalf("default bits = %d", idx2.va.bits)
	}
}

func TestConstantDimensionHandled(t *testing.T) {
	div := bregman.SquaredEuclidean{}
	pts := points(div, 100, 4, 6)
	for _, p := range pts {
		p[2] = 7 // constant dimension
	}
	idx := build(t, div, pts, 6)
	got, _ := idx.Search(pts[3], 5)
	want := scan.KNN(div, pts, pts[3], 5)
	for i := range want {
		if math.Abs(got[i].Score-want[i].Score) > 1e-9 {
			t.Fatal("constant dimension broke exactness")
		}
	}
}

func TestSearchZeroK(t *testing.T) {
	div := bregman.SquaredEuclidean{}
	pts := points(div, 20, 3, 7)
	idx := build(t, div, pts, 4)
	if got, _ := idx.Search(pts[0], 0); got != nil {
		t.Fatal("k=0 should return nil")
	}
}

func TestKLargerThanN(t *testing.T) {
	div := bregman.SquaredEuclidean{}
	pts := points(div, 10, 3, 8)
	idx := build(t, div, pts, 4)
	got, _ := idx.Search(pts[0], 50)
	if len(got) != 10 {
		t.Fatalf("k>n should clamp: got %d", len(got))
	}
}

func TestCellBoundsContainValues(t *testing.T) {
	div := bregman.ItakuraSaito{}
	pts := points(div, 200, 5, 9)
	idx := build(t, div, pts, 5)
	va := idx.va
	for i, p := range pts {
		row := va.cells[i*va.dim : (i+1)*va.dim]
		ext := make([]float64, va.dim)
		copy(ext, p)
		var s float64
		for _, v := range p {
			s += div.Phi(v)
		}
		ext[va.dim-1] = s
		for j, cell := range row {
			lo, hi := va.cellBounds(j, cell)
			// Allow boundary placement at the extreme cells.
			if ext[j] < lo-1e-9 || ext[j] > hi+1e-9 {
				t.Fatalf("point %d extdim %d: value %g outside cell [%g,%g]",
					i, j, ext[j], lo, hi)
			}
		}
	}
}
