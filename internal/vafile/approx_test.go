package vafile

import (
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"brepartition/internal/bregman"
	"brepartition/internal/disk"
	"brepartition/internal/scan"
	"brepartition/internal/topk"
)

// edgePoints generates points hugging the divergence's domain edge: for
// (0,∞) domains, coordinates down to 1e-9; for unbounded domains, large
// magnitudes of both signs mixed with near-zeros. The quantization grid
// must stay conservative at exactly these extremes.
func edgePoints(div bregman.Divergence, n, d int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	lo, _ := div.Domain()
	positive := !math.IsInf(lo, -1)
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, d)
		for j := range p {
			switch {
			case positive && rng.Intn(4) == 0:
				p[j] = 1e-9 * (1 + rng.Float64()) // domain edge
			case positive:
				p[j] = 1e-3 + 10*rng.Float64()
			case rng.Intn(4) == 0:
				p[j] = 1e-9 * (rng.Float64() - 0.5)
			default:
				p[j] = 40 * (rng.Float64() - 0.5)
			}
		}
		pts[i] = p
	}
	return pts
}

// TestSearchExactEveryRegisteredDivergence oracle-checks the VA-file
// against the brute-force scan for every registered divergence, over
// point sets that include domain-edge coordinates. Scores must agree to
// the distance clamp and IDs under the (score, id) tie-break.
func TestSearchExactEveryRegisteredDivergence(t *testing.T) {
	for _, div := range bregman.All() {
		div := div
		t.Run(div.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(77))
			pts := edgePoints(div, 400, 8, 11)
			idx := build(t, div, pts, 6)
			for trial := 0; trial < 8; trial++ {
				q := pts[rng.Intn(len(pts))]
				k := 1 + rng.Intn(15)
				got, _ := idx.Search(q, k)
				want := scan.KNN(div, pts, q, k)
				if len(got) != len(want) {
					t.Fatalf("k=%d: %d results, want %d", k, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("k=%d pos %d: got (%d, %g) want (%d, %g)",
							k, i, got[i].ID, got[i].Score, want[i].ID, want[i].Score)
					}
				}
			}
		})
	}
}

// TestScanBoundsContainExactDistances property-tests the core pruning
// invariant directly: for every point, lb ≤ D_f(x, q) must hold, and any
// point pruned by τ must not belong to the exact top-k.
func TestScanBoundsContainExactDistances(t *testing.T) {
	for _, div := range bregman.All() {
		pts := edgePoints(div, 300, 6, 13)
		va, err := BuildApprox(div, pts, 5)
		if err != nil {
			t.Fatal(err)
		}
		scr := va.NewScratch()
		idx := build(t, div, pts, 5)
		rng := rand.New(rand.NewSource(14))
		for trial := 0; trial < 5; trial++ {
			q := pts[rng.Intn(len(pts))]
			const k = 7
			tau := scr.ScanBounds(va, idx.kern, q, k)
			lbs := scr.LowerBounds()
			want := scan.KNN(div, pts, q, k)
			inTopK := map[int]bool{}
			for _, it := range want {
				inTopK[it.ID] = true
			}
			for i, p := range pts {
				d := idx.kern.Distance(p, q)
				if lbs[i] > d+1e-9*(1+d) {
					t.Fatalf("%s: point %d lb %g exceeds exact distance %g", div.Name(), i, lbs[i], d)
				}
				if lbs[i] > tau && inTopK[i] {
					t.Fatalf("%s: pruned point %d is in the exact top-%d", div.Name(), i, k)
				}
			}
		}
	}
}

func TestSearchSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector makes sync.Pool drop items; allocation counts are meaningless")
	}
	for _, div := range []bregman.Divergence{bregman.SquaredEuclidean{}, bregman.GeneralizedKL{}} {
		pts := points(div, 600, 8, 21)
		idx := build(t, div, pts, 6)
		q := pts[17]
		dst := make([]topk.Item, 0, 16)
		// Warm the pool.
		for i := 0; i < 3; i++ {
			dst, _ = idx.SearchAppend(dst[:0], q, 10)
		}
		allocs := testing.AllocsPerRun(200, func() {
			dst, _ = idx.SearchAppend(dst[:0], q, 10)
		})
		if allocs != 0 {
			t.Fatalf("%s: SearchAppend allocates %.1f/op in steady state", div.Name(), allocs)
		}
	}
}

func TestApproxFileRoundTrip(t *testing.T) {
	div := bregman.GeneralizedKL{}
	pts := edgePoints(div, 150, 5, 31)
	va, err := BuildApprox(div, pts, 7)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "va.bps")
	if err := va.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := OpenApproxFile(path, div)
	if err != nil {
		t.Fatal(err)
	}
	if got.bits != va.bits || got.dim != va.dim || got.n != va.n {
		t.Fatalf("geometry changed: %d/%d/%d", got.bits, got.dim, got.n)
	}
	for j := range va.lo {
		if got.lo[j] != va.lo[j] || got.hi[j] != va.hi[j] {
			t.Fatalf("range changed in dim %d", j)
		}
	}
	for i := range va.cells {
		if got.cells[i] != va.cells[i] {
			t.Fatalf("cell %d changed", i)
		}
	}
	// The reopened approximation must prune identically.
	kern := build(t, div, pts, 7).kern
	sa, sb := va.NewScratch(), got.NewScratch()
	q := pts[3]
	ta := sa.ScanBounds(va, kern, q, 5)
	tb := sb.ScanBounds(got, kern, q, 5)
	if ta != tb {
		t.Fatalf("tau diverged: %g vs %g", ta, tb)
	}
	for i := range sa.LowerBounds() {
		if sa.LowerBounds()[i] != sb.LowerBounds()[i] {
			t.Fatalf("lb %d diverged", i)
		}
	}
}

func TestOpenApproxFileRejectsCorruption(t *testing.T) {
	div := bregman.SquaredEuclidean{}
	pts := points(div, 60, 4, 41)
	va, err := BuildApprox(div, pts, 6)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "va.bps")
	if err := va.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string]func([]byte) []byte{
		"flipped payload byte": func(b []byte) []byte {
			c := append([]byte{}, b...)
			c[20] ^= 0xFF
			return c
		},
		"flipped magic": func(b []byte) []byte {
			c := append([]byte{}, b...)
			c[0] ^= 0xFF
			return c
		},
		"truncated": func(b []byte) []byte { return b[:len(b)/2] },
		"empty":     func(b []byte) []byte { return nil },
		"tail cut":  func(b []byte) []byte { return b[:len(b)-3] },
	}
	for name, mutate := range cases {
		p := filepath.Join(dir, "bad.bps")
		if err := os.WriteFile(p, mutate(raw), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenApproxFile(p, div); !errors.Is(err, ErrCorruptVA) {
			t.Fatalf("%s: err = %v, want ErrCorruptVA", name, err)
		}
	}
}

// FuzzApproxFile throws mutated approximation files at the opener; it
// must reject or accept cleanly, never panic, and accepted files must
// have in-range cells.
func FuzzApproxFile(f *testing.F) {
	div := bregman.SquaredEuclidean{}
	pts := points(div, 20, 3, 51)
	va, err := BuildApprox(div, pts, 4)
	if err != nil {
		f.Fatal(err)
	}
	dir := f.TempDir()
	seedPath := filepath.Join(dir, "seed.bps")
	if err := va.WriteFile(seedPath); err != nil {
		f.Fatal(err)
	}
	seed, err := os.ReadFile(seedPath)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:8])
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		p := filepath.Join(t.TempDir(), "fuzz.bps")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Skip()
		}
		a, err := OpenApproxFile(p, div)
		if err != nil {
			return
		}
		maxCell := uint16(1<<a.bits - 1)
		for _, c := range a.cells {
			if c > maxCell {
				t.Fatalf("accepted file has out-of-range cell %d (bits %d)", c, a.bits)
			}
		}
	})
}

func TestBuildApproxRejectsRagged(t *testing.T) {
	div := bregman.SquaredEuclidean{}
	if _, err := BuildApprox(div, [][]float64{{1, 2}, {1}}, 4); err == nil {
		t.Fatal("ragged points accepted")
	}
}

func TestBuildRejectsRaggedViaIndex(t *testing.T) {
	div := bregman.SquaredEuclidean{}
	_, err := Build(div, [][]float64{{1, 2}, {3}}, Config{Disk: disk.Config{PageSize: 1024}})
	if err == nil {
		t.Fatal("ragged points accepted")
	}
}
