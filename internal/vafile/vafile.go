// Package vafile implements the "VAF" baseline of the paper's evaluation:
// Zhang et al.'s exact Bregman similarity search (PVLDB 2009), which maps
// points into an extended space where the Bregman distance becomes linear
// and then filters with a vector-approximation (VA) file.
//
// For a decomposable generator f(x) = Σ φ(xⱼ),
//
//	D_f(x, y) = Σφ(xⱼ) − Σφ(yⱼ) − Σ φ′(yⱼ)(xⱼ − yⱼ)
//	          = ⟨ŵ(y), x̂⟩ + c(y)
//
// with the extended point x̂ = (x₁,…,x_d, Σφ(xⱼ)), the query weights
// ŵ(y) = (−φ′(y₁),…,−φ′(y_d), 1) and the query constant
// c(y) = −Σφ(yⱼ) + Σ yⱼφ′(yⱼ). kNN under D_f is therefore kNN under a
// per-query linear functional of x̂, which a classic VA-file answers
// exactly: quantized cells give per-point lower/upper bounds on the
// functional, the k-th smallest upper bound prunes, survivors are read
// from disk and verified.
//
// The compressed-domain machinery itself (Approx/Scratch/ScanBounds in
// approx.go) is shared with the serving-path cold tier in
// internal/coldtier; the Index here is the self-contained evaluation
// harness over an in-memory page store.
package vafile

import (
	"sync"

	"brepartition/internal/bregman"
	"brepartition/internal/disk"
	"brepartition/internal/kernel"
	"brepartition/internal/topk"
)

// Config tunes the VA-file.
type Config struct {
	// Bits per extended dimension (cells per dim = 2^Bits). Default 6.
	Bits int
	// Disk configures the candidate page store and the approximation
	// file's page accounting.
	Disk disk.Config
}

// Index is a VA-file over the extended space.
type Index struct {
	div     bregman.Divergence
	kern    kernel.Kernel
	va      *Approx
	store   *disk.Store
	vaPages int // pages the approximation file occupies

	// pool recycles per-query search state (bound scratch, accounting
	// session, selector) so steady-state Search allocates nothing.
	pool sync.Pool
}

// Stats reports one query's work.
type Stats struct {
	Candidates    int
	PageReads     int
	DistanceComps int
}

type searchCtx struct {
	scr  *Scratch
	sess *disk.Session
	sel  *topk.Selector
}

// Build constructs the VA-file index. Points must lie in the divergence's
// domain.
func Build(div bregman.Divergence, points [][]float64, cfg Config) (*Index, error) {
	va, err := BuildApprox(div, points, cfg.Bits)
	if err != nil {
		return nil, err
	}
	store, err := disk.NewStore(points, nil, cfg.Disk)
	if err != nil {
		return nil, err
	}
	idx := &Index{div: div, kern: kernel.For(div), va: va, store: store}
	approxBytes := len(points) * va.Dim() * va.Bits() / 8
	idx.vaPages = (approxBytes + cfg.Disk.PageSize - 1) / cfg.Disk.PageSize
	if idx.vaPages < 1 {
		idx.vaPages = 1
	}
	return idx, nil
}

// Store exposes the candidate page store (for shared accounting in the
// harness).
func (idx *Index) Store() *disk.Store { return idx.store }

// Approx exposes the resident compressed-domain representation.
func (idx *Index) Approx() *Approx { return idx.va }

func (idx *Index) getCtx() *searchCtx {
	if c, ok := idx.pool.Get().(*searchCtx); ok {
		c.sess.Reset(idx.store)
		return c
	}
	return &searchCtx{
		scr:  idx.va.NewScratch(),
		sess: idx.store.NewSession(),
		sel:  topk.New(1),
	}
}

func (idx *Index) putCtx(c *searchCtx) { idx.pool.Put(c) }

// Search answers the exact kNN of q under D_f(x, q). The returned items are
// ascending by distance. I/O accounting: every query scans the whole
// approximation file (vaPages reads) and then reads each surviving
// candidate's page.
func (idx *Index) Search(q []float64, k int) ([]topk.Item, Stats) {
	items, st := idx.SearchAppend(nil, q, k)
	return items, st
}

// SearchAppend is Search appending the result items to dst (allocation-
// free in steady state when dst has capacity k).
func (idx *Index) SearchAppend(dst []topk.Item, q []float64, k int) ([]topk.Item, Stats) {
	var st Stats
	if k <= 0 {
		return dst[:0], st
	}
	n := idx.va.Len()
	if k > n {
		k = n
	}

	ctx := idx.getCtx()
	defer idx.putCtx(ctx)

	// Phase 1: resident compressed-domain scan; τ = guarded k-th smallest
	// upper bound on the query functional.
	tau := ctx.scr.ScanBounds(idx.va, idx.kern, q, k)
	lbs := ctx.scr.LowerBounds()

	// Phase 2: verify survivors with exact distances, charging their page
	// reads. Survivors are visited in ascending id order over the store's
	// identity layout, so the reads stream the flat arena linearly.
	ctx.sel.ResetK(k)
	for i := 0; i < n; i++ {
		if lbs[i] > tau {
			continue
		}
		st.Candidates++
		p := ctx.sess.Point(i)
		st.DistanceComps++
		ctx.sel.Offer(i, idx.kern.Distance(p, q))
	}
	st.PageReads = ctx.sess.PageReads() + idx.vaPages
	return ctx.sel.AppendItems(dst[:0]), st
}
