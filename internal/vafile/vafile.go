// Package vafile implements the "VAF" baseline of the paper's evaluation:
// Zhang et al.'s exact Bregman similarity search (PVLDB 2009), which maps
// points into an extended space where the Bregman distance becomes linear
// and then filters with a vector-approximation (VA) file.
//
// For a decomposable generator f(x) = Σ φ(xⱼ),
//
//	D_f(x, y) = Σφ(xⱼ) − Σφ(yⱼ) − Σ φ′(yⱼ)(xⱼ − yⱼ)
//	          = ⟨ŵ(y), x̂⟩ + c(y)
//
// with the extended point x̂ = (x₁,…,x_d, Σφ(xⱼ)), the query weights
// ŵ(y) = (−φ′(y₁),…,−φ′(y_d), 1) and the query constant
// c(y) = −Σφ(yⱼ) + Σ yⱼφ′(yⱼ). kNN under D_f is therefore kNN under a
// per-query linear functional of x̂, which a classic VA-file answers
// exactly: quantized cells give per-point lower/upper bounds on the
// functional, the k-th smallest upper bound prunes, survivors are read
// from disk and verified.
package vafile

import (
	"errors"
	"math"

	"brepartition/internal/bregman"
	"brepartition/internal/disk"
	"brepartition/internal/kernel"
	"brepartition/internal/topk"
)

// Config tunes the VA-file.
type Config struct {
	// Bits per extended dimension (cells per dim = 2^Bits). Default 6.
	Bits int
	// Disk configures the candidate page store and the approximation
	// file's page accounting.
	Disk disk.Config
}

// Index is a VA-file over the extended space.
type Index struct {
	div  bregman.Divergence
	bits int
	dim  int // extended dimensionality d+1

	lo, hi  []float64 // per extended dim quantization range
	cells   []uint16  // n * dim cell indices
	n       int
	store   *disk.Store
	vaPages int // pages the approximation file occupies
}

// Stats reports one query's work.
type Stats struct {
	Candidates    int
	PageReads     int
	DistanceComps int
}

// Build constructs the VA-file index. Points must lie in the divergence's
// domain.
func Build(div bregman.Divergence, points [][]float64, cfg Config) (*Index, error) {
	if len(points) == 0 {
		return nil, errors.New("vafile: empty dataset")
	}
	if cfg.Bits <= 0 {
		cfg.Bits = 6
	}
	if cfg.Bits > 16 {
		cfg.Bits = 16
	}
	d := len(points[0])
	ext := d + 1
	idx := &Index{div: div, bits: cfg.Bits, dim: ext, n: len(points)}

	// Extended coordinates: originals plus s(x) = Σφ(xⱼ).
	extend := func(p []float64) []float64 {
		e := make([]float64, ext)
		copy(e, p)
		var s float64
		for _, v := range p {
			s += div.Phi(v)
		}
		e[d] = s
		return e
	}

	idx.lo = make([]float64, ext)
	idx.hi = make([]float64, ext)
	for j := range idx.lo {
		idx.lo[j] = math.Inf(1)
		idx.hi[j] = math.Inf(-1)
	}
	extPts := make([][]float64, len(points))
	for i, p := range points {
		e := extend(p)
		extPts[i] = e
		for j, v := range e {
			if v < idx.lo[j] {
				idx.lo[j] = v
			}
			if v > idx.hi[j] {
				idx.hi[j] = v
			}
		}
	}
	for j := range idx.lo {
		if idx.hi[j] <= idx.lo[j] {
			idx.hi[j] = idx.lo[j] + 1 // constant dim: single degenerate cell
		}
	}

	cellsPerDim := 1 << cfg.Bits
	idx.cells = make([]uint16, len(points)*ext)
	for i, e := range extPts {
		row := idx.cells[i*ext : (i+1)*ext]
		for j, v := range e {
			c := int(float64(cellsPerDim) * (v - idx.lo[j]) / (idx.hi[j] - idx.lo[j]))
			if c < 0 {
				c = 0
			}
			if c >= cellsPerDim {
				c = cellsPerDim - 1
			}
			row[j] = uint16(c)
		}
	}

	store, err := disk.NewStore(points, nil, cfg.Disk)
	if err != nil {
		return nil, err
	}
	idx.store = store

	approxBytes := len(points) * ext * cfg.Bits / 8
	idx.vaPages = (approxBytes + cfg.Disk.PageSize - 1) / cfg.Disk.PageSize
	if idx.vaPages < 1 {
		idx.vaPages = 1
	}
	return idx, nil
}

// Store exposes the candidate page store (for shared accounting in the
// harness).
func (idx *Index) Store() *disk.Store { return idx.store }

// cellBounds returns the value interval of cell c along extended dim j.
func (idx *Index) cellBounds(j int, c uint16) (lo, hi float64) {
	cells := float64(int(1) << idx.bits)
	w := (idx.hi[j] - idx.lo[j]) / cells
	lo = idx.lo[j] + float64(c)*w
	return lo, lo + w
}

// Search answers the exact kNN of q under D_f(x, q). The returned items are
// ascending by distance. I/O accounting: every query scans the whole
// approximation file (vaPages reads) and then reads each surviving
// candidate's page.
func (idx *Index) Search(q []float64, k int) ([]topk.Item, Stats) {
	var st Stats
	if k <= 0 {
		return nil, st
	}
	if k > idx.n {
		k = idx.n
	}
	d := idx.dim - 1

	// Query functional: weights over extended dims plus constant.
	w := make([]float64, idx.dim)
	var c float64
	for j := 0; j < d; j++ {
		g := idx.div.Grad(q[j])
		w[j] = -g
		c += -idx.div.Phi(q[j]) + q[j]*g
	}
	w[d] = 1

	// Phase 1: bounds from cells; τ = k-th smallest upper bound.
	ubSel := topk.New(k)
	lbs := make([]float64, idx.n)
	for i := 0; i < idx.n; i++ {
		row := idx.cells[i*idx.dim : (i+1)*idx.dim]
		var lb, ub float64
		for j, cell := range row {
			clo, chi := idx.cellBounds(j, cell)
			if w[j] >= 0 {
				lb += w[j] * clo
				ub += w[j] * chi
			} else {
				lb += w[j] * chi
				ub += w[j] * clo
			}
		}
		lbs[i] = lb + c
		ubSel.Offer(i, ub+c)
	}
	tau, _ := ubSel.Threshold()

	// Phase 2: verify survivors, charging their page reads. Survivors are
	// visited in ascending id order over the store's identity layout, so
	// the reads stream the flat arena linearly; the kernel is picked once,
	// outside the loop.
	kern := kernel.For(idx.div)
	sess := idx.store.NewSession()
	sel := topk.New(k)
	for i := 0; i < idx.n; i++ {
		if lbs[i] > tau {
			continue
		}
		st.Candidates++
		p := sess.Point(i)
		st.DistanceComps++
		sel.Offer(i, kern.Distance(p, q))
	}
	st.PageReads = sess.PageReads() + idx.vaPages
	return sel.Items(), st
}
