//go:build !race

package vafile

// raceEnabled is false in regular builds; see race_on_test.go.
const raceEnabled = false
