package vafile

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"

	"brepartition/internal/bregman"
	"brepartition/internal/kernel"
	"brepartition/internal/topk"
)

// Approx is the resident compressed-domain representation: per-point
// quantized cells of the extended space (d original coordinates plus
// s(x) = Σφ(xⱼ)). It is small enough to pin in memory — n·(d+1) uint16s
// plus two float64 range vectors — and is the first pass of the cold
// tier: ScanBounds evaluates conservative lower/upper bounds of the
// per-query linear functional against every cell so the k-th smallest
// upper bound prunes points before their full vectors are faulted in.
type Approx struct {
	div  bregman.Divergence
	bits int
	dim  int // extended dimensionality d+1
	n    int

	lo, hi []float64 // per extended dim quantization range
	cells  []uint16  // n * dim cell indices
}

// ErrCorruptVA reports a damaged or truncated approximation file.
var ErrCorruptVA = errors.New("vafile: corrupt approximation file")

// lutMaxBits bounds the per-query lookup-table fast path: above this the
// table (2 · dim · 2^bits float64s) stops paying for itself and the scan
// falls back to computing cell bounds in the loop.
const lutMaxBits = 10

// BuildApprox quantizes points (which must lie in div's domain) into a
// cells-per-dim = 2^bits grid over the extended space. bits ≤ 0 defaults
// to 6 and is clamped to 16. Quantization is conservative by
// construction: each cell index is nudged until the cell's bounds — in
// the exact arithmetic ScanBounds uses — contain the value, so the
// per-point bound intervals always contain the true functional value.
func BuildApprox(div bregman.Divergence, points [][]float64, bits int) (*Approx, error) {
	if len(points) == 0 {
		return nil, errors.New("vafile: empty dataset")
	}
	if bits <= 0 {
		bits = 6
	}
	if bits > 16 {
		bits = 16
	}
	d := len(points[0])
	for i, p := range points {
		if len(p) != d {
			return nil, fmt.Errorf("vafile: point %d has dim %d, want %d", i, len(p), d)
		}
	}
	ext := d + 1
	a := &Approx{div: div, bits: bits, dim: ext, n: len(points)}
	kern := kernel.For(div)

	a.lo = make([]float64, ext)
	a.hi = make([]float64, ext)
	for j := range a.lo {
		a.lo[j] = math.Inf(1)
		a.hi[j] = math.Inf(-1)
	}
	extPts := make([][]float64, len(points))
	for i, p := range points {
		e := make([]float64, ext)
		kernel.VAExtend(kern, e, p)
		extPts[i] = e
		for j, v := range e {
			if v < a.lo[j] {
				a.lo[j] = v
			}
			if v > a.hi[j] {
				a.hi[j] = v
			}
		}
	}
	for j := range a.lo {
		if !isFinite(a.lo[j]) || !isFinite(a.hi[j]) {
			return nil, fmt.Errorf("vafile: non-finite extended coordinate in dim %d", j)
		}
		if a.hi[j] <= a.lo[j] {
			a.hi[j] = a.lo[j] + 1 // constant dim: single degenerate cell
		}
	}

	cellsPerDim := 1 << bits
	a.cells = make([]uint16, len(points)*ext)
	for i, e := range extPts {
		row := a.cells[i*ext : (i+1)*ext]
		for j, v := range e {
			c := int(float64(cellsPerDim) * (v - a.lo[j]) / (a.hi[j] - a.lo[j]))
			if c < 0 {
				c = 0
			}
			if c >= cellsPerDim {
				c = cellsPerDim - 1
			}
			// Containment nudge: the pruning bounds are only valid if the
			// cell interval — evaluated with cellBounds' own floating-point
			// arithmetic — actually contains v. Rounding in the division
			// above can land the index one cell off near boundaries.
			for c > 0 {
				if lo, _ := a.cellBounds(j, uint16(c)); lo > v {
					c--
					continue
				}
				break
			}
			for c < cellsPerDim-1 {
				if _, hi := a.cellBounds(j, uint16(c)); hi < v {
					c++
					continue
				}
				break
			}
			row[j] = uint16(c)
		}
	}
	return a, nil
}

func isFinite(v float64) bool { return !math.IsInf(v, 0) && !math.IsNaN(v) }

// Bits returns the bits per extended dimension.
func (a *Approx) Bits() int { return a.bits }

// Dim returns the extended dimensionality (original d + 1).
func (a *Approx) Dim() int { return a.dim }

// Len returns the number of points.
func (a *Approx) Len() int { return a.n }

// Divergence returns the divergence the approximation was built for.
func (a *Approx) Divergence() bregman.Divergence { return a.div }

// MemoryBytes returns the resident footprint of the approximation.
func (a *Approx) MemoryBytes() int64 {
	return int64(len(a.cells))*2 + int64(len(a.lo)+len(a.hi))*8
}

// cellBounds returns the value interval of cell c along extended dim j.
// ScanBounds and the build-time containment nudge must use identical
// arithmetic here — that identity is what makes the bounds conservative.
func (a *Approx) cellBounds(j int, c uint16) (lo, hi float64) {
	cells := float64(int(1) << a.bits)
	w := (a.hi[j] - a.lo[j]) / cells
	lo = a.lo[j] + float64(c)*w
	return lo, lo + w
}

// Scratch holds one query's scan state; reuse across queries makes
// ScanBounds allocation-free in steady state. Not safe for concurrent
// use; pool one per worker.
type Scratch struct {
	w   []float64 // extended query weights ŵ(q)
	lut []float64 // [2·dim·cells] lb/ub term table (bits ≤ lutMaxBits)
	lbs []float64 // per-point lower bounds, valid after ScanBounds
	ub  *topk.Selector
}

// NewScratch allocates scan state sized for a.
func (a *Approx) NewScratch() *Scratch {
	s := &Scratch{
		w:   make([]float64, a.dim),
		lbs: make([]float64, a.n),
		ub:  topk.New(1),
	}
	if a.bits <= lutMaxBits {
		s.lut = make([]float64, 2*a.dim<<a.bits)
	}
	return s
}

// LowerBounds returns the per-point lower bounds computed by the last
// ScanBounds call (a view into the scratch; valid until the next call).
func (s *Scratch) LowerBounds() []float64 { return s.lbs }

// ScanBounds runs the compressed-domain first pass: it computes the
// query functional via kern, accumulates per-point lower/upper bounds
// from the quantized cells, and returns the pruning threshold τ — the
// k-th smallest upper bound, inflated by a relative guard band that
// absorbs the floating-point reordering between the bound accumulation
// and the exact distances survivors are verified with. A point i may be
// skipped without changing the exact answer iff LowerBounds()[i] > τ.
// kern must evaluate the same divergence a was built for; k is clamped
// to the point count.
func (s *Scratch) ScanBounds(a *Approx, kern kernel.Kernel, q []float64, k int) float64 {
	if len(q) != a.dim-1 {
		panic(fmt.Sprintf("vafile: query dim %d, want %d", len(q), a.dim-1))
	}
	if k > a.n {
		k = a.n
	}
	if k < 1 {
		k = 1
	}
	c := kernel.VAPrep(kern, s.w, q)
	s.ub.ResetK(k)
	if len(s.lbs) < a.n {
		s.lbs = make([]float64, a.n)
	}
	lbs := s.lbs[:a.n]

	if a.bits <= lutMaxBits {
		s.buildLUT(a)
		cellsPD := 1 << a.bits
		lutLB := s.lut[: a.dim*cellsPD : a.dim*cellsPD]
		lutUB := s.lut[a.dim*cellsPD : 2*a.dim*cellsPD]
		for i := 0; i < a.n; i++ {
			row := a.cells[i*a.dim : (i+1)*a.dim]
			var lb, ub float64
			for j, cell := range row {
				off := j<<a.bits + int(cell)
				lb += lutLB[off]
				ub += lutUB[off]
			}
			lbs[i] = lb + c
			s.ub.Offer(i, ub+c)
		}
	} else {
		for i := 0; i < a.n; i++ {
			row := a.cells[i*a.dim : (i+1)*a.dim]
			var lb, ub float64
			for j, cell := range row {
				clo, chi := a.cellBounds(j, cell)
				if w := s.w[j]; w >= 0 {
					lb += w * clo
					ub += w * chi
				} else {
					lb += w * chi
					ub += w * clo
				}
			}
			lbs[i] = lb + c
			s.ub.Offer(i, ub+c)
		}
	}
	tau, ok := s.ub.Threshold()
	if !ok {
		return math.Inf(1)
	}
	// Guard band: lower bounds and τ are sums accumulated in different
	// orders than the exact verification distances; a relative nudge far
	// above the achievable rounding error keeps pruning conservative
	// without costing measurable selectivity.
	tau += 1e-9 * (math.Abs(tau) + math.Abs(c))
	return tau
}

// buildLUT precomputes, per (extended dim, cell), the lower- and
// upper-bound contribution of the current query weights.
func (s *Scratch) buildLUT(a *Approx) {
	cellsPD := 1 << a.bits
	lutLB := s.lut[: a.dim*cellsPD : a.dim*cellsPD]
	lutUB := s.lut[a.dim*cellsPD : 2*a.dim*cellsPD]
	for j := 0; j < a.dim; j++ {
		w := s.w[j]
		base := j << a.bits
		for cell := 0; cell < cellsPD; cell++ {
			clo, chi := a.cellBounds(j, uint16(cell))
			if w >= 0 {
				lutLB[base+cell] = w * clo
				lutUB[base+cell] = w * chi
			} else {
				lutLB[base+cell] = w * chi
				lutUB[base+cell] = w * clo
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Persistence: the approximation is tiny relative to the page file, so it
// is written whole with a single trailing checksum.
// ---------------------------------------------------------------------------

const approxMagic uint32 = 0x56414201 // "VAB\x01"

// WriteFile persists the approximation (without the divergence, which the
// caller re-binds at open: the grid is divergence-specific but the file
// stores only geometry).
func (a *Approx) WriteFile(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	buf := make([]byte, 0, 16+16*a.dim+2*len(a.cells)+4)
	buf = binary.LittleEndian.AppendUint32(buf, approxMagic)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(a.bits))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(a.dim))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(a.n))
	for j := 0; j < a.dim; j++ {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(a.lo[j]))
	}
	for j := 0; j < a.dim; j++ {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(a.hi[j]))
	}
	for _, cell := range a.cells {
		buf = binary.LittleEndian.AppendUint16(buf, cell)
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	_, err = f.Write(buf)
	return err
}

// OpenApproxFile loads an approximation written by WriteFile, verifying
// its checksum and validating every cell index against the bit width,
// and binds it to div.
func OpenApproxFile(path string, div bregman.Divergence) (*Approx, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw) < 20 {
		return nil, ErrCorruptVA
	}
	body := raw[:len(raw)-4]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(raw[len(raw)-4:]) {
		return nil, fmt.Errorf("%w: checksum mismatch in %s", ErrCorruptVA, path)
	}
	if binary.LittleEndian.Uint32(body[0:4]) != approxMagic {
		return nil, fmt.Errorf("%w: bad magic in %s", ErrCorruptVA, path)
	}
	bits := int(binary.LittleEndian.Uint32(body[4:8]))
	dim := int(binary.LittleEndian.Uint32(body[8:12]))
	n := int(binary.LittleEndian.Uint32(body[12:16]))
	if bits < 1 || bits > 16 || dim < 2 || n < 1 {
		return nil, fmt.Errorf("%w: bad geometry in %s", ErrCorruptVA, path)
	}
	want := 16 + 16*dim + 2*n*dim
	if len(body) != want {
		return nil, fmt.Errorf("%w: size %d, want %d in %s", ErrCorruptVA, len(body), want, path)
	}
	a := &Approx{div: div, bits: bits, dim: dim, n: n}
	a.lo = make([]float64, dim)
	a.hi = make([]float64, dim)
	off := 16
	for j := 0; j < dim; j++ {
		a.lo[j] = math.Float64frombits(binary.LittleEndian.Uint64(body[off:]))
		off += 8
	}
	for j := 0; j < dim; j++ {
		a.hi[j] = math.Float64frombits(binary.LittleEndian.Uint64(body[off:]))
		off += 8
	}
	for j := 0; j < dim; j++ {
		if !isFinite(a.lo[j]) || !isFinite(a.hi[j]) || a.hi[j] <= a.lo[j] {
			return nil, fmt.Errorf("%w: bad range in dim %d of %s", ErrCorruptVA, j, path)
		}
	}
	maxCell := uint16(1<<bits - 1)
	a.cells = make([]uint16, n*dim)
	for i := range a.cells {
		cell := binary.LittleEndian.Uint16(body[off:])
		if cell > maxCell {
			return nil, fmt.Errorf("%w: cell %d out of %d-bit range in %s", ErrCorruptVA, cell, bits, path)
		}
		a.cells[i] = cell
		off += 2
	}
	return a, nil
}
