// Package topk provides the bounded max-heap used everywhere BrePartition
// selects "the k smallest of n" — the k-th smallest upper bound in
// Algorithm 4 (O(n log k)), kNN refinement, and the baselines' candidate
// maintenance.
package topk

import "slices"

// Item pairs a candidate identifier with its score (a distance or bound).
type Item struct {
	ID    int
	Score float64
}

// Selector keeps the k items with the smallest scores seen so far using a
// max-heap of size ≤ k: the root is the current k-th smallest score, so a
// new item replaces the root iff it is strictly smaller.
//
// The zero value is unusable; construct with New.
type Selector struct {
	k    int
	heap []Item // max-heap on Score
}

// New returns a Selector retaining the k smallest-scored items. k must be
// positive.
func New(k int) *Selector {
	if k <= 0 {
		panic("topk: k must be positive")
	}
	return &Selector{k: k, heap: make([]Item, 0, k)}
}

// K returns the selector's capacity.
func (s *Selector) K() int { return s.k }

// Len returns how many items are currently retained (≤ k).
func (s *Selector) Len() int { return len(s.heap) }

// Full reports whether k items have been retained.
func (s *Selector) Full() bool { return len(s.heap) == s.k }

// Threshold returns the current k-th smallest score: the score below which
// a new item would be admitted. Before the selector is full it returns
// +Inf semantics via the ok=false flag.
func (s *Selector) Threshold() (score float64, ok bool) {
	if !s.Full() {
		return 0, false
	}
	return s.heap[0].Score, true
}

// Admissible reports whether an item with the given score could enter the
// selection (true while not full, or when score beats the current root).
func (s *Selector) Admissible(score float64) bool {
	if !s.Full() {
		return true
	}
	return score < s.heap[0].Score
}

// Offer considers (id, score) for the selection and reports whether it was
// admitted.
func (s *Selector) Offer(id int, score float64) bool {
	if len(s.heap) < s.k {
		s.heap = append(s.heap, Item{ID: id, Score: score})
		s.up(len(s.heap) - 1)
		return true
	}
	if score >= s.heap[0].Score {
		return false
	}
	s.heap[0] = Item{ID: id, Score: score}
	s.down(0)
	return true
}

// Items returns the retained items sorted ascending by score (ties broken
// by ID for determinism). The selector remains usable afterwards.
func (s *Selector) Items() []Item {
	return s.AppendItems(nil)
}

// AppendItems appends the retained items to dst sorted ascending by score
// (ties broken by ID) and returns the extended slice. With a dst of
// sufficient capacity it performs no allocation — the zero-alloc search
// path hands it a reused buffer. The selector remains usable afterwards.
func (s *Selector) AppendItems(dst []Item) []Item {
	base := len(dst)
	dst = append(dst, s.heap...)
	slices.SortFunc(dst[base:], Compare)
	return dst
}

// Compare orders ascending by (Score, ID) — the deterministic result
// order every search surface uses. As a named function (not a closure) it
// keeps sorting with slices.SortFunc allocation-free.
func Compare(a, b Item) int {
	switch {
	case a.Score < b.Score:
		return -1
	case a.Score > b.Score:
		return 1
	case a.ID < b.ID:
		return -1
	case a.ID > b.ID:
		return 1
	default:
		return 0
	}
}

// MaxItem returns the retained item with the largest (Score, ID) — once
// the selector is full, the k-th smallest overall with the same tie-break
// Items uses — without sorting. The heap root pins the max score; ties on
// it are resolved by the highest ID with one O(k) scan. ok is false while
// the selector is empty.
func (s *Selector) MaxItem() (it Item, ok bool) {
	if len(s.heap) == 0 {
		return Item{}, false
	}
	best := s.heap[0]
	for _, cand := range s.heap[1:] {
		if cand.Score == best.Score && cand.ID > best.ID {
			best = cand
		}
	}
	return best, true
}

// Reset empties the selector, retaining capacity.
func (s *Selector) Reset() { s.heap = s.heap[:0] }

// ResetK empties the selector and changes its capacity to k, reusing the
// backing array when possible; the alloc-free reuse path for pooled
// per-query selectors. k must be positive.
func (s *Selector) ResetK(k int) {
	if k <= 0 {
		panic("topk: k must be positive")
	}
	s.k = k
	if cap(s.heap) < k {
		s.heap = make([]Item, 0, k)
	} else {
		s.heap = s.heap[:0]
	}
}

func (s *Selector) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if s.heap[parent].Score >= s.heap[i].Score {
			return
		}
		s.heap[parent], s.heap[i] = s.heap[i], s.heap[parent]
		i = parent
	}
}

func (s *Selector) down(i int) {
	n := len(s.heap)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && s.heap[l].Score > s.heap[largest].Score {
			largest = l
		}
		if r < n && s.heap[r].Score > s.heap[largest].Score {
			largest = r
		}
		if largest == i {
			return
		}
		s.heap[i], s.heap[largest] = s.heap[largest], s.heap[i]
		i = largest
	}
}

// KthSmallest returns the k-th smallest value of scores (1-based k) in
// O(n log k) without mutating the input. It panics when k is out of range.
func KthSmallest(scores []float64, k int) float64 {
	if k <= 0 || k > len(scores) {
		panic("topk: k out of range")
	}
	sel := New(k)
	for i, sc := range scores {
		sel.Offer(i, sc)
	}
	v, _ := sel.Threshold()
	return v
}

// MinQueue is a conventional min-priority queue keyed by float64, used by
// best-first BB-tree traversal. The zero value is ready to use.
type MinQueue struct {
	items []Item
}

// Len returns the number of queued items.
func (q *MinQueue) Len() int { return len(q.items) }

// Push enqueues (id, score).
func (q *MinQueue) Push(id int, score float64) {
	q.items = append(q.items, Item{ID: id, Score: score})
	i := len(q.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if q.items[parent].Score <= q.items[i].Score {
			break
		}
		q.items[parent], q.items[i] = q.items[i], q.items[parent]
		i = parent
	}
}

// Pop removes and returns the smallest-scored item. ok is false on empty.
func (q *MinQueue) Pop() (it Item, ok bool) {
	if len(q.items) == 0 {
		return Item{}, false
	}
	it = q.items[0]
	last := len(q.items) - 1
	q.items[0] = q.items[last]
	q.items = q.items[:last]
	i, n := 0, len(q.items)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.items[l].Score < q.items[smallest].Score {
			smallest = l
		}
		if r < n && q.items[r].Score < q.items[smallest].Score {
			smallest = r
		}
		if smallest == i {
			break
		}
		q.items[i], q.items[smallest] = q.items[smallest], q.items[i]
		i = smallest
	}
	return it, true
}
