package topk

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSelectorBasics(t *testing.T) {
	s := New(3)
	if s.Full() {
		t.Fatal("fresh selector should not be full")
	}
	if _, ok := s.Threshold(); ok {
		t.Fatal("threshold should be unavailable before full")
	}
	for i, sc := range []float64{5, 1, 3} {
		if !s.Offer(i, sc) {
			t.Fatalf("offer %d rejected while not full", i)
		}
	}
	if thr, ok := s.Threshold(); !ok || thr != 5 {
		t.Fatalf("threshold = %v,%v want 5,true", thr, ok)
	}
	if s.Offer(9, 6) {
		t.Fatal("worse item admitted")
	}
	if !s.Offer(10, 0.5) {
		t.Fatal("better item rejected")
	}
	items := s.Items()
	want := []Item{{10, 0.5}, {1, 1}, {2, 3}}
	for i := range want {
		if items[i] != want[i] {
			t.Fatalf("items[%d] = %v, want %v", i, items[i], want[i])
		}
	}
}

func TestSelectorMatchesSortProperty(t *testing.T) {
	f := func(scores []float64, kRaw uint8) bool {
		if len(scores) == 0 {
			return true
		}
		k := int(kRaw)%len(scores) + 1
		s := New(k)
		for i, sc := range scores {
			s.Offer(i, sc)
		}
		got := s.Items()
		sorted := append([]float64(nil), scores...)
		sort.Float64s(sorted)
		if len(got) != k {
			return false
		}
		for i := 0; i < k; i++ {
			if got[i].Score != sorted[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSelectorAdmissible(t *testing.T) {
	s := New(2)
	if !s.Admissible(1e18) {
		t.Fatal("anything is admissible while not full")
	}
	s.Offer(0, 1)
	s.Offer(1, 2)
	if s.Admissible(2) {
		t.Fatal("equal-to-threshold should not be admissible")
	}
	if !s.Admissible(1.5) {
		t.Fatal("below-threshold should be admissible")
	}
}

func TestSelectorReset(t *testing.T) {
	s := New(2)
	s.Offer(0, 1)
	s.Reset()
	if s.Len() != 0 {
		t.Fatal("reset should empty the selector")
	}
}

func TestSelectorTieBreakByID(t *testing.T) {
	s := New(3)
	s.Offer(7, 1)
	s.Offer(3, 1)
	s.Offer(5, 1)
	items := s.Items()
	if items[0].ID != 3 || items[1].ID != 5 || items[2].ID != 7 {
		t.Fatalf("tie break wrong: %v", items)
	}
}

func TestNewPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k=0")
		}
	}()
	New(0)
}

func TestKthSmallest(t *testing.T) {
	v := []float64{9, 1, 8, 2, 7, 3}
	if got := KthSmallest(v, 1); got != 1 {
		t.Fatalf("1st = %g", got)
	}
	if got := KthSmallest(v, 4); got != 7 {
		t.Fatalf("4th = %g", got)
	}
	if got := KthSmallest(v, 6); got != 9 {
		t.Fatalf("6th = %g", got)
	}
}

func TestKthSmallestPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	KthSmallest([]float64{1}, 2)
}

func TestMinQueueOrdering(t *testing.T) {
	var q MinQueue
	rng := rand.New(rand.NewSource(1))
	n := 500
	for i := 0; i < n; i++ {
		q.Push(i, rng.Float64())
	}
	prev := -1.0
	count := 0
	for {
		it, ok := q.Pop()
		if !ok {
			break
		}
		if it.Score < prev {
			t.Fatalf("pop out of order: %g after %g", it.Score, prev)
		}
		prev = it.Score
		count++
	}
	if count != n {
		t.Fatalf("popped %d of %d", count, n)
	}
}

func TestMinQueueEmptyPop(t *testing.T) {
	var q MinQueue
	if _, ok := q.Pop(); ok {
		t.Fatal("pop from empty queue should report !ok")
	}
}

func TestMinQueueInterleaved(t *testing.T) {
	var q MinQueue
	q.Push(1, 5)
	q.Push(2, 1)
	if it, _ := q.Pop(); it.ID != 2 {
		t.Fatalf("want id 2, got %d", it.ID)
	}
	q.Push(3, 0.5)
	q.Push(4, 10)
	if it, _ := q.Pop(); it.ID != 3 {
		t.Fatalf("want id 3, got %d", it.ID)
	}
	if it, _ := q.Pop(); it.ID != 1 {
		t.Fatalf("want id 1, got %d", it.ID)
	}
	if it, _ := q.Pop(); it.ID != 4 {
		t.Fatalf("want id 4, got %d", it.ID)
	}
}

func BenchmarkSelectorOffer(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	scores := make([]float64, 100000)
	for i := range scores {
		scores[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New(100)
		for id, sc := range scores {
			s.Offer(id, sc)
		}
	}
}
