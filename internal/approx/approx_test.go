package approx

import (
	"math"
	"math/rand"
	"testing"

	"brepartition/internal/bregman"
	"brepartition/internal/partition"
	"brepartition/internal/stats"
	"brepartition/internal/transform"
)

func negPoints(n, d int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, n)
	for i := range out {
		p := make([]float64, d)
		for j := range p {
			p[j] = -1 - 0.4*rng.Float64()
		}
		out[i] = p
	}
	return out
}

func TestFitBetaXYKinds(t *testing.T) {
	div := bregman.Exponential{}
	points := negPoints(500, 16, 1)
	y := points[0]
	for _, kind := range []FitKind{FitEmpirical, FitNormalMoments, FitNormalHistogram} {
		dist, err := FitBetaXY(div, points, y, Config{Fit: kind, Seed: 2})
		if err != nil {
			t.Fatalf("kind %d: %v", kind, err)
		}
		// CDF must be monotone over a probe grid.
		prev := -1.0
		for _, x := range []float64{-100, -10, 0, 10, 100} {
			c := dist.CDF(x)
			if c < prev-1e-12 || c < 0 || c > 1 {
				t.Fatalf("kind %d: CDF not a CDF at %g", kind, x)
			}
			prev = c
		}
	}
}

func TestFitBetaXYEmpty(t *testing.T) {
	div := bregman.Exponential{}
	if _, err := FitBetaXY(div, nil, []float64{1}, Config{}); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func TestCoefficientBounds(t *testing.T) {
	// Against a known normal Ψ, c must be in (0,1] and increase with p.
	dist := stats.Normal{Mu: 0, Sigma: 1}
	prev := 0.0
	for _, p := range []float64{0.5, 0.7, 0.9, 0.99} {
		c, err := Coefficient(dist, p, 5, 3)
		if err != nil {
			t.Fatal(err)
		}
		if c <= 0 || c > 1 {
			t.Fatalf("p=%g: c=%g outside (0,1]", p, c)
		}
		if c < prev {
			t.Fatalf("c not monotone in p: %g after %g", c, prev)
		}
		prev = c
	}
}

func TestCoefficientP1IsExact(t *testing.T) {
	dist := stats.Normal{Mu: 0, Sigma: 1}
	c, err := Coefficient(dist, 1, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	// p=1 requires the full mass below µ, so c → Ψ⁻¹(Ψ(µ))/µ = 1.
	if math.Abs(c-1) > 1e-9 {
		t.Fatalf("p=1: c = %g, want 1", c)
	}
}

func TestCoefficientInvalidP(t *testing.T) {
	dist := stats.Normal{Mu: 0, Sigma: 1}
	for _, p := range []float64{0, -0.5, 1.5} {
		if _, err := Coefficient(dist, p, 1, 1); err == nil {
			t.Fatalf("p=%g accepted", p)
		}
	}
}

func TestCoefficientDegenerateMu(t *testing.T) {
	dist := stats.Normal{Mu: 0, Sigma: 1}
	c, err := Coefficient(dist, 0.8, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c != 1 {
		t.Fatalf("µ=0 should force c=1, got %g", c)
	}
}

func TestCoefficientSemantics(t *testing.T) {
	// With an empirical Ψ, the fraction of βxy samples below c·µ should be
	// at least p·Ψ(µ) + (1−p)·Ψ(−κ) — the Proposition-1 construction.
	div := bregman.Exponential{}
	points := negPoints(2000, 12, 3)
	y := points[1]
	dist, err := FitBetaXY(div, points, y, Config{Fit: FitEmpirical, Samples: 2000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	kappa, mu := transform.KappaMu(div, points[2], y)
	p := 0.8
	c, err := Coefficient(dist, p, kappa, mu)
	if err != nil {
		t.Fatal(err)
	}
	target := p*dist.CDF(mu) + (1-p)*dist.CDF(-kappa)
	if got := dist.CDF(c * mu); got < target-0.02 {
		t.Fatalf("CDF(cµ) = %g < target %g", got, target)
	}
}

func TestScaledRadii(t *testing.T) {
	div := bregman.Exponential{}
	points := negPoints(50, 8, 5)
	parts := partition.Equal(8, 2)
	x, y := points[0], points[1]
	tuples := transform.PTransform(div, x, parts)
	triples := transform.QTransform(div, y, parts)

	full := ScaledRadii(tuples, triples, 1)
	for i := range full {
		want := transform.UBCompute(tuples[i], triples[i])
		if math.Abs(full[i]-want) > 1e-9*(1+math.Abs(want)) {
			t.Fatalf("c=1 radius %g != UB %g", full[i], want)
		}
	}
	tight := ScaledRadii(tuples, triples, 0.5)
	for i := range tight {
		if tight[i] > full[i]+1e-12 {
			t.Fatalf("c=0.5 radius %g exceeds exact %g", tight[i], full[i])
		}
		if tight[i] < 0 {
			t.Fatal("negative radius")
		}
	}
	// Monotone in c.
	mid := ScaledRadii(tuples, triples, 0.8)
	for i := range mid {
		if mid[i] < tight[i]-1e-12 || mid[i] > full[i]+1e-12 {
			t.Fatal("radii not monotone in c")
		}
	}
}
