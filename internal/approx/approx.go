// Package approx implements the paper's approximate extension (§8): the
// exact per-subspace searching radii are tightened by a coefficient
// c ∈ (0,1] derived from the distribution of βxy so that, with probability
// guarantee p, the tightened candidate set still contains the exact kNN.
//
// Proposition 1: with Ψ the CDF of βxy,
//
//	c = Ψ⁻¹( p·Ψ(µ) + (1−p)·Ψ(−κ) ) / µ,
//
// where κ + µ is the exact full-space bound split into its Cauchy-invariant
// part κ and relaxed part µ = √(Σx²·Σφ′(y)²). The tightening is applied to
// the Cauchy (√γδ) term of every subspace's radius, which is exactly the
// term the relaxation created.
package approx

import (
	"errors"
	"math"
	"math/rand"

	"brepartition/internal/bregman"
	"brepartition/internal/stats"
	"brepartition/internal/transform"
)

// FitKind selects how the βxy distribution Ψ is modelled.
type FitKind int

const (
	// FitEmpirical uses the empirical CDF of the sampled βxy values.
	FitEmpirical FitKind = iota
	// FitNormalMoments fits a Gaussian by moments.
	FitNormalMoments
	// FitNormalHistogram fits a Gaussian to a histogram by least squares,
	// the paper's footnote-1 recipe.
	FitNormalHistogram
)

// Config tunes the per-query distribution fit.
type Config struct {
	Fit FitKind
	// Samples bounds how many data points are sampled for βxy. Default 400.
	Samples int
	// HistogramBins is used by FitNormalHistogram. Default 32.
	HistogramBins int
	Seed          int64
}

func (c Config) withDefaults() Config {
	if c.Samples <= 0 {
		c.Samples = 400
	}
	if c.HistogramBins <= 0 {
		c.HistogramBins = 32
	}
	return c
}

// ErrGuarantee reports an invalid probability guarantee.
var ErrGuarantee = errors.New("approx: probability guarantee must be in (0,1]")

// FitBetaXY samples βxy(x, y) = −Σ xⱼφ′(yⱼ) over data points x for the
// query y and returns the fitted distribution Ψ.
func FitBetaXY(div bregman.Divergence, points [][]float64, y []float64, cfg Config) (stats.Dist, error) {
	cfg = cfg.withDefaults()
	n := len(points)
	if n == 0 {
		return nil, stats.ErrEmpty
	}
	m := cfg.Samples
	if m > n {
		m = n
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	samples := make([]float64, m)
	if m == n {
		for i, p := range points {
			samples[i] = transform.BetaXY(div, p, y)
		}
	} else {
		for i := range samples {
			samples[i] = transform.BetaXY(div, points[rng.Intn(n)], y)
		}
	}
	switch cfg.Fit {
	case FitNormalMoments:
		d, err := stats.FitNormalMoments(samples)
		return d, err
	case FitNormalHistogram:
		d, err := stats.FitNormalHistogramLS(samples, cfg.HistogramBins)
		return d, err
	default:
		return stats.NewEmpirical(samples)
	}
}

// Coefficient evaluates Proposition 1. µ must be positive; κ is the
// Cauchy-invariant bound part. The result is clamped to (0, 1]: c ≥ 1 means
// the tightening would be vacuous and exact search should be used.
func Coefficient(dist stats.Dist, p, kappa, mu float64) (float64, error) {
	if !(p > 0 && p <= 1) {
		return 0, ErrGuarantee
	}
	if mu <= 0 || math.IsNaN(mu) {
		return 1, nil
	}
	target := p*dist.CDF(mu) + (1-p)*dist.CDF(-kappa)
	c := dist.Quantile(target) / mu
	if math.IsNaN(c) || c >= 1 {
		return 1, nil
	}
	// βxy may be negative-heavy; a non-positive quantile would erase the
	// Cauchy term entirely, which still yields a valid (if aggressive)
	// radius, but c must stay positive for the probability semantics.
	if c <= 0 {
		c = 1e-6
	}
	return c, nil
}

// ScaledRadii recomputes the per-subspace radii of the selected bound point
// with the Cauchy term tightened by c:
//
//	radiusᵢ = αx + αy + βyy + c·√(γx·δy),
//
// floored at 0 (a Bregman range radius is never negative).
func ScaledRadii(tuples []transform.PointTuple, q []transform.QueryTriple, c float64) []float64 {
	out := make([]float64, len(q))
	for i := range q {
		r := tuples[i].Alpha + q[i].Alpha + q[i].BetaYY + c*math.Sqrt(tuples[i].Gamma*q[i].Delta)
		if r < 0 {
			r = 0
		}
		out[i] = r
	}
	return out
}
