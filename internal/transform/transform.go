// Package transform implements the paper's derivation-of-bound machinery
// (§4, Algorithms 1–4). After dimensionality partitioning, every data point
// x is transformed offline into per-subspace tuples P(x) = (αx, γx) and a
// query y online into per-subspace triples Q(y) = (αy, βyy, δy); the
// Cauchy–Schwarz upper bound of Theorem 1,
//
//	D_f(xi, yi) ≤ αx + αy + βyy + √(γx·δy),
//
// then costs O(1) per (point, subspace). Summed over subspaces it bounds the
// full-space divergence (Theorem 2), and the k-th smallest summed bound
// yields per-subspace range-query radii whose candidate union provably
// contains the kNN (Theorem 3).
package transform

import (
	"math"

	"brepartition/internal/bregman"
	"brepartition/internal/topk"
)

// PointTuple is P(x) = (αx, γx) for one subspace:
// αx = Σⱼ φ(xⱼ), γx = Σⱼ xⱼ² over the subspace's dimensions.
type PointTuple struct {
	Alpha float64
	Gamma float64
}

// QueryTriple is Q(y) = (αy, βyy, δy) for one subspace:
// αy = −Σⱼ φ(yⱼ), βyy = Σⱼ yⱼ·φ′(yⱼ), δy = Σⱼ φ′(yⱼ)².
type QueryTriple struct {
	Alpha  float64
	BetaYY float64
	Delta  float64
}

// UBCompute is Algorithm 1: the Theorem-1 upper bound from a point tuple
// and a query triple.
func UBCompute(p PointTuple, q QueryTriple) float64 {
	return p.Alpha + q.Alpha + q.BetaYY + math.Sqrt(p.Gamma*q.Delta)
}

// PTransform is Algorithm 2: transform a (partitioned) data point into one
// tuple per subspace. parts[i] lists the original dimension indices of
// subspace i.
func PTransform(div bregman.Divergence, x []float64, parts [][]int) []PointTuple {
	out := make([]PointTuple, len(parts))
	for i, dims := range parts {
		out[i] = PTransformSub(div, x, dims)
	}
	return out
}

// PTransformSub computes the tuple of a single subspace.
func PTransformSub(div bregman.Divergence, x []float64, dims []int) PointTuple {
	var t PointTuple
	for _, j := range dims {
		v := x[j]
		t.Alpha += div.Phi(v)
		t.Gamma += v * v
	}
	return t
}

// QTransform is Algorithm 3: transform a query into one triple per subspace.
func QTransform(div bregman.Divergence, y []float64, parts [][]int) []QueryTriple {
	return QTransformAppend(nil, div, y, parts)
}

// QTransformAppend is QTransform appending into dst — with sufficient
// capacity it allocates nothing (the pooled search context's path).
func QTransformAppend(dst []QueryTriple, div bregman.Divergence, y []float64, parts [][]int) []QueryTriple {
	for _, dims := range parts {
		dst = append(dst, QTransformSub(div, y, dims))
	}
	return dst
}

// QTransformSub computes the triple of a single subspace.
func QTransformSub(div bregman.Divergence, y []float64, dims []int) QueryTriple {
	var t QueryTriple
	for _, j := range dims {
		v := y[j]
		g := div.Grad(v)
		t.Alpha -= div.Phi(v)
		t.BetaYY += v * g
		t.Delta += g * g
	}
	return t
}

// SubspaceDistance computes the exact Bregman distance restricted to the
// subspace's dimensions (the quantity the upper bound dominates).
func SubspaceDistance(div bregman.Divergence, x, y []float64, dims []int) float64 {
	var s float64
	for _, j := range dims {
		s += div.Phi(x[j]) - div.Phi(y[j]) - div.Grad(y[j])*(x[j]-y[j])
	}
	if s < 0 {
		return 0
	}
	return s
}

// Bounds holds the outcome of Algorithm 4: the per-subspace searching
// radii taken from the point realizing the k-th smallest total upper bound.
type Bounds struct {
	// Radii[i] is the range-query radius for subspace i.
	Radii []float64
	// Total is the k-th smallest summed upper bound (the pruning
	// threshold in the original space).
	Total float64
	// PointID identifies the data point whose bound components were
	// selected.
	PointID int
}

// QBDetermine is Algorithm 4: compute the summed upper bound for every
// point from precomputed tuples, select the k-th smallest in O(n log k),
// and return its per-subspace components as the searching radii.
//
// tuples[i] holds the per-subspace tuples of point i. scratch, when
// non-nil with capacity ≥ number of subspaces, avoids an allocation.
func QBDetermine(tuples [][]PointTuple, q []QueryTriple, k int) Bounds {
	n := len(tuples)
	if n == 0 {
		return Bounds{}
	}
	sel := topk.New(min(k, n))
	return QBDetermineInto(tuples, q, sel, make([]float64, len(q)))
}

// QBDetermineInto is QBDetermine with caller-owned state: sel (already
// sized to the effective k, reusable via ResetK) selects the k-th smallest
// summed bound, and radii (len == number of subspaces) receives the
// selected point's per-subspace components. The returned Bounds aliases
// radii. With a pooled selector and radii buffer it allocates nothing:
// the k-th smallest item is read off the selector's max-heap root instead
// of a sorted copy.
func QBDetermineInto(tuples [][]PointTuple, q []QueryTriple, sel *topk.Selector, radii []float64) Bounds {
	if len(tuples) == 0 {
		return Bounds{}
	}
	for i, pt := range tuples {
		var total float64
		for j := range q {
			total += UBCompute(pt[j], q[j])
		}
		sel.Offer(i, total)
	}
	kth, _ := sel.MaxItem()

	for j := range q {
		radii[j] = UBCompute(tuples[kth.ID][j], q[j])
	}
	return Bounds{Radii: radii, Total: kth.Score, PointID: kth.ID}
}

// QBDetermineFilterInto is QBDetermineInto restricted to the points keep
// admits: only admitted points are offered to the selector, so the
// returned radii come from the k-th smallest summed bound *among the
// matching points*. That restriction is what makes filtered search exact:
// the k-th matching neighbour can lie beyond the unfiltered k-th bound,
// so reusing unfiltered radii would prune matches away. When fewer than k
// points match, the largest admitted bound is returned — a radius that
// covers every match, which is all a filtered query can answer with.
// ok is false when no point matched (the caller answers empty).
func QBDetermineFilterInto(tuples [][]PointTuple, q []QueryTriple, sel *topk.Selector, radii []float64, keep func(id int) bool) (Bounds, bool) {
	if len(tuples) == 0 {
		return Bounds{}, false
	}
	for i, pt := range tuples {
		if !keep(i) {
			continue
		}
		var total float64
		for j := range q {
			total += UBCompute(pt[j], q[j])
		}
		sel.Offer(i, total)
	}
	kth, ok := sel.MaxItem()
	if !ok {
		return Bounds{}, false
	}
	for j := range q {
		radii[j] = UBCompute(tuples[kth.ID][j], q[j])
	}
	return Bounds{Radii: radii, Total: kth.Score, PointID: kth.ID}, true
}

// ---------------------------------------------------------------------------
// Full-space quantities for the approximate extension (§8).
// ---------------------------------------------------------------------------

// BetaXY returns βxy = −Σⱼ xⱼ·φ′(yⱼ), the random variable whose
// distribution Proposition 1 models.
func BetaXY(div bregman.Divergence, x, y []float64) float64 {
	var s float64
	for j := range x {
		s += x[j] * div.Grad(y[j])
	}
	return -s
}

// KappaMu returns the κ + µ decomposition of the full-space exact bound:
// κ = Σφ(x) − Σφ(y) + Σ y·φ′(y) (unaffected by the Cauchy relaxation) and
// µ = √(Σx² · Σφ′(y)²) (the relaxed magnitude of βxy).
func KappaMu(div bregman.Divergence, x, y []float64) (kappa, mu float64) {
	var fx, fy, yy, xx, gg float64
	for j := range x {
		fx += div.Phi(x[j])
		fy += div.Phi(y[j])
		g := div.Grad(y[j])
		yy += y[j] * g
		xx += x[j] * x[j]
		gg += g * g
	}
	return fx - fy + yy, math.Sqrt(xx * gg)
}

// UpperBoundFull returns the full-space Theorem-2 bound Σᵢ UB(xi, yi)
// directly from a point's tuples and a query's triples.
func UpperBoundFull(tuples []PointTuple, q []QueryTriple) float64 {
	var total float64
	for j := range q {
		total += UBCompute(tuples[j], q[j])
	}
	return total
}
