package transform

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"brepartition/internal/bregman"
)

// equalParts mirrors partition.Equal without importing it (the partition
// package depends on transform, so the test would form a cycle).
func equalParts(d, m int) [][]int {
	if m < 1 {
		m = 1
	}
	if m > d {
		m = d
	}
	size := (d + m - 1) / m
	var parts [][]int
	for start := 0; start < d; start += size {
		end := start + size
		if end > d {
			end = d
		}
		dims := make([]int, end-start)
		for i := range dims {
			dims[i] = start + i
		}
		parts = append(parts, dims)
	}
	return parts
}

func domainVec(div bregman.Divergence, d int, rng *rand.Rand) []float64 {
	lo, _ := div.Domain()
	v := make([]float64, d)
	for i := range v {
		if math.IsInf(lo, -1) {
			v[i] = 4 * (rng.Float64() - 0.5)
		} else {
			v[i] = lo + 0.1 + 4*rng.Float64()
		}
	}
	return v
}

var testDivs = []bregman.Divergence{
	bregman.SquaredEuclidean{},
	bregman.ItakuraSaito{},
	bregman.Exponential{},
	bregman.GeneralizedKL{},
}

// TestTheorem1UpperBoundDominates: UB(xi,yi) ≥ D_f(xi,yi) in every subspace
// for every divergence — the core soundness property of the filter.
func TestTheorem1UpperBoundDominates(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, div := range testDivs {
		for trial := 0; trial < 200; trial++ {
			d := 4 + rng.Intn(28)
			m := 1 + rng.Intn(d)
			parts := equalParts(d, m)
			x := domainVec(div, d, rng)
			y := domainVec(div, d, rng)
			pt := PTransform(div, x, parts)
			qt := QTransform(div, y, parts)
			for i, dims := range parts {
				ub := UBCompute(pt[i], qt[i])
				dist := SubspaceDistance(div, x, y, dims)
				if ub < dist-1e-9*(1+math.Abs(dist)) {
					t.Fatalf("%s d=%d m=%d sub=%d: UB %g < D %g",
						div.Name(), d, m, i, ub, dist)
				}
			}
		}
	}
}

// TestTheorem2Additivity: Σᵢ D(xi,yi) = D(x,y) for decomposable generators,
// and the summed upper bound dominates the full distance.
func TestTheorem2Additivity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, div := range testDivs {
		for trial := 0; trial < 100; trial++ {
			d := 6 + rng.Intn(20)
			m := 1 + rng.Intn(d)
			parts := equalParts(d, m)
			x := domainVec(div, d, rng)
			y := domainVec(div, d, rng)
			var sum float64
			for _, dims := range parts {
				sum += SubspaceDistance(div, x, y, dims)
			}
			full := bregman.Distance(div, x, y)
			if math.Abs(sum-full) > 1e-8*(1+full) {
				t.Fatalf("%s: Σ subspace %g != full %g", div.Name(), sum, full)
			}
			ubFull := UpperBoundFull(PTransform(div, x, parts), QTransform(div, y, parts))
			if ubFull < full-1e-8*(1+full) {
				t.Fatalf("%s: UB %g < D %g", div.Name(), ubFull, full)
			}
		}
	}
}

// TestTheorem3Completeness: every true kNN point appears in the candidate
// union produced by the Algorithm-4 radii.
func TestTheorem3Completeness(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, div := range testDivs {
		n, d, m, k := 300, 16, 4, 10
		points := make([][]float64, n)
		for i := range points {
			points[i] = domainVec(div, d, rng)
		}
		parts := equalParts(d, m)
		tuples := make([][]PointTuple, n)
		for i, p := range points {
			tuples[i] = PTransform(div, p, parts)
		}
		for trial := 0; trial < 10; trial++ {
			y := domainVec(div, d, rng)
			qt := QTransform(div, y, parts)
			b := QBDetermine(tuples, qt, k)

			// Exact kNN by scan.
			type pair struct {
				id int
				d  float64
			}
			dists := make([]pair, n)
			for i, p := range points {
				dists[i] = pair{i, bregman.Distance(div, p, y)}
			}
			for i := 0; i < k; i++ { // selection sort prefix
				min := i
				for j := i + 1; j < n; j++ {
					if dists[j].d < dists[min].d {
						min = j
					}
				}
				dists[i], dists[min] = dists[min], dists[i]
			}
			for i := 0; i < k; i++ {
				id := dists[i].id
				inUnion := false
				for si, dims := range parts {
					if SubspaceDistance(div, points[id], y, dims) <= b.Radii[si]+1e-9 {
						inUnion = true
						break
					}
				}
				if !inUnion {
					t.Fatalf("%s: true %d-NN point %d missing from candidate union",
						div.Name(), i+1, id)
				}
			}
		}
	}
}

func TestQBDetermineKthBound(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	div := bregman.SquaredEuclidean{}
	n, d, m := 100, 8, 2
	parts := equalParts(d, m)
	points := make([][]float64, n)
	tuples := make([][]PointTuple, n)
	for i := range points {
		points[i] = domainVec(div, d, rng)
		tuples[i] = PTransform(div, points[i], parts)
	}
	y := domainVec(div, d, rng)
	qt := QTransform(div, y, parts)

	b := QBDetermine(tuples, qt, 5)
	// Exactly 5 points should have total UB ≤ b.Total (up to ties).
	within := 0
	for i := range tuples {
		if UpperBoundFull(tuples[i], qt) <= b.Total+1e-12 {
			within++
		}
	}
	if within < 5 {
		t.Fatalf("only %d points within the 5th smallest bound", within)
	}
	// The radii must reproduce the selected point's components.
	var sum float64
	for i := range b.Radii {
		sum += b.Radii[i]
	}
	if math.Abs(sum-b.Total) > 1e-9*(1+b.Total) {
		t.Fatalf("Σ radii %g != Total %g", sum, b.Total)
	}
}

func TestQBDetermineEdgeCases(t *testing.T) {
	div := bregman.SquaredEuclidean{}
	parts := equalParts(4, 2)
	if b := QBDetermine(nil, QTransform(div, []float64{1, 2, 3, 4}, parts), 3); b.Radii != nil {
		t.Fatal("empty dataset should return zero bounds")
	}
	// k > n clamps.
	tuples := [][]PointTuple{PTransform(div, []float64{1, 1, 1, 1}, parts)}
	b := QBDetermine(tuples, QTransform(div, []float64{0, 0, 0, 0}, parts), 10)
	if b.PointID != 0 {
		t.Fatalf("PointID = %d", b.PointID)
	}
}

func TestKappaMuMatchesM1Bound(t *testing.T) {
	// κ + µ must equal the M=1 Theorem-1 bound.
	rng := rand.New(rand.NewSource(5))
	for _, div := range testDivs {
		d := 12
		parts := equalParts(d, 1)
		x := domainVec(div, d, rng)
		y := domainVec(div, d, rng)
		kappa, mu := KappaMu(div, x, y)
		ub := UBCompute(PTransform(div, x, parts)[0], QTransform(div, y, parts)[0])
		if math.Abs(kappa+mu-ub) > 1e-9*(1+math.Abs(ub)) {
			t.Fatalf("%s: κ+µ = %g, UB(M=1) = %g", div.Name(), kappa+mu, ub)
		}
	}
}

func TestBetaXYRelaxation(t *testing.T) {
	// |βxy| ≤ µ (Cauchy–Schwarz), the relaxation behind Proposition 1.
	rng := rand.New(rand.NewSource(6))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		_ = rng
		div := testDivs[int(uint64(seed)%uint64(len(testDivs)))]
		x := domainVec(div, 10, r)
		y := domainVec(div, 10, r)
		beta := BetaXY(div, x, y)
		_, mu := KappaMu(div, x, y)
		return math.Abs(beta) <= mu+1e-9*(1+mu)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPTransformSubConsistency(t *testing.T) {
	div := bregman.Exponential{}
	rng := rand.New(rand.NewSource(7))
	x := domainVec(div, 9, rng)
	parts := equalParts(9, 3)
	whole := PTransform(div, x, parts)
	for i, dims := range parts {
		single := PTransformSub(div, x, dims)
		if whole[i] != single {
			t.Fatalf("subspace %d: %+v != %+v", i, whole[i], single)
		}
	}
}

func TestSubspaceDistanceNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, div := range testDivs {
		x := domainVec(div, 10, rng)
		y := domainVec(div, 10, rng)
		parts := equalParts(10, 5)
		for _, dims := range parts {
			if d := SubspaceDistance(div, x, y, dims); d < 0 {
				t.Fatalf("%s: negative subspace distance %g", div.Name(), d)
			}
		}
	}
}
