// Package vecmath provides the small numeric substrate used throughout the
// BrePartition reproduction: vector arithmetic, running statistics,
// correlation, and a few special functions (inverse normal CDF) that the
// Go standard library does not ship.
//
// Everything operates on []float64 and is allocation-conscious: callers on
// hot paths pass destination slices where it matters.
package vecmath

import (
	"errors"
	"math"
)

// ErrLengthMismatch is returned (or panicked in must-variants) when two
// vectors that must share a dimensionality do not.
var ErrLengthMismatch = errors.New("vecmath: vector length mismatch")

// Dot returns the inner product of a and b. It panics if the lengths differ,
// because a mismatch is always a programming error on the hot path.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(ErrLengthMismatch)
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// SumSquares returns Σ aᵢ².
func SumSquares(a []float64) float64 {
	var s float64
	for _, v := range a {
		s += v * v
	}
	return s
}

// Norm2 returns the Euclidean norm of a.
func Norm2(a []float64) float64 { return math.Sqrt(SumSquares(a)) }

// Sum returns Σ aᵢ using Kahan compensated summation, which keeps the
// bound-tightness comparisons in the partition optimizer stable for the
// long, mixed-magnitude sums that arise with exponential generators.
func Sum(a []float64) float64 {
	var sum, c float64
	for _, v := range a {
		y := v - c
		t := sum + y
		c = (t - sum) - y
		sum = t
	}
	return sum
}

// Mean returns the arithmetic mean of a, or 0 for an empty slice.
func Mean(a []float64) float64 {
	if len(a) == 0 {
		return 0
	}
	return Sum(a) / float64(len(a))
}

// Variance returns the population variance of a (denominator n), or 0 for
// slices shorter than 1.
func Variance(a []float64) float64 {
	n := len(a)
	if n == 0 {
		return 0
	}
	m := Mean(a)
	var s float64
	for _, v := range a {
		d := v - m
		s += d * d
	}
	return s / float64(n)
}

// Covariance returns the population covariance of a and b.
func Covariance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(ErrLengthMismatch)
	}
	n := len(a)
	if n == 0 {
		return 0
	}
	ma, mb := Mean(a), Mean(b)
	var s float64
	for i := range a {
		s += (a[i] - ma) * (b[i] - mb)
	}
	return s / float64(n)
}

// Pearson returns the Pearson correlation coefficient r(a,b) =
// cov(a,b)/√(var(a)·var(b)). If either variance is zero (a constant
// dimension) it returns 0, which PCCP treats as "uncorrelated".
func Pearson(a, b []float64) float64 {
	va, vb := Variance(a), Variance(b)
	if va == 0 || vb == 0 {
		return 0
	}
	r := Covariance(a, b) / math.Sqrt(va*vb)
	// Numerical noise can push |r| infinitesimally above 1.
	if r > 1 {
		r = 1
	} else if r < -1 {
		r = -1
	}
	return r
}

// AddScaled sets dst = a + s*b and returns dst. dst may alias a. A nil dst
// allocates; callers on hot paths pass a correctly sized dst, which is
// honored as-is (too-short non-nil dst panics rather than silently
// allocating a replacement).
func AddScaled(dst, a []float64, s float64, b []float64) []float64 {
	if len(a) != len(b) {
		panic(ErrLengthMismatch)
	}
	if dst == nil {
		dst = make([]float64, len(a))
	}
	AddScaledInto(dst, a, s, b)
	return dst
}

// AddScaledInto is the alloc-free variant: dst must already have a's
// length (it panics otherwise, never allocates).
func AddScaledInto(dst, a []float64, s float64, b []float64) {
	if len(dst) != len(a) || len(a) != len(b) {
		panic(ErrLengthMismatch)
	}
	for i := range a {
		dst[i] = a[i] + s*b[i]
	}
}

// Lerp sets dst[i] = (1-t)*a[i] + t*b[i] and returns dst. dst may alias
// either input; nil dst allocates, any other dst is honored as-is.
func Lerp(dst, a, b []float64, t float64) []float64 {
	if len(a) != len(b) {
		panic(ErrLengthMismatch)
	}
	if dst == nil {
		dst = make([]float64, len(a))
	}
	LerpInto(dst, a, b, t)
	return dst
}

// LerpInto is the alloc-free variant of Lerp: dst must already have the
// inputs' length (it panics otherwise, never allocates).
func LerpInto(dst, a, b []float64, t float64) {
	if len(dst) != len(a) || len(a) != len(b) {
		panic(ErrLengthMismatch)
	}
	for i := range a {
		dst[i] = (1-t)*a[i] + t*b[i]
	}
}

// Sub sets dst = a − b and returns dst. dst may alias either input; nil
// dst allocates, any other dst is honored as-is.
func Sub(dst, a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(ErrLengthMismatch)
	}
	if dst == nil {
		dst = make([]float64, len(a))
	}
	SubInto(dst, a, b)
	return dst
}

// SubInto is the alloc-free variant of Sub: dst must already have the
// inputs' length (it panics otherwise, never allocates).
func SubInto(dst, a, b []float64) {
	if len(dst) != len(a) || len(a) != len(b) {
		panic(ErrLengthMismatch)
	}
	for i := range a {
		dst[i] = a[i] - b[i]
	}
}

// Clone returns a fresh copy of a.
func Clone(a []float64) []float64 {
	out := make([]float64, len(a))
	copy(out, a)
	return out
}

// EqualApprox reports whether |a-b| ≤ tol element-wise.
func EqualApprox(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

// Close reports whether two scalars agree to within an absolute-or-relative
// tolerance, the comparison used across the test suites.
func Close(a, b, tol float64) bool {
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= tol*scale
}

// MinMax returns the smallest and largest values in a. It panics on an
// empty slice.
func MinMax(a []float64) (lo, hi float64) {
	if len(a) == 0 {
		panic("vecmath: MinMax of empty slice")
	}
	lo, hi = a[0], a[0]
	for _, v := range a[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// NormalCDF returns Φ(x), the standard normal cumulative distribution.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormalQuantile returns Φ⁻¹(p) for p ∈ (0,1) using Acklam's rational
// approximation refined by one Halley step, accurate to ~1e-15. It returns
// ±Inf at the endpoints and NaN outside [0,1].
func NormalQuantile(p float64) float64 {
	switch {
	case math.IsNaN(p) || p < 0 || p > 1:
		return math.NaN()
	case p == 0:
		return math.Inf(-1)
	case p == 1:
		return math.Inf(1)
	}

	// Coefficients for Acklam's approximation.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}

	const plow = 0.02425
	var x float64
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-plow:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}

	// One Halley refinement step against the exact CDF.
	e := NormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}
