package vecmath

import (
	"testing"
)

// TestDstHonored pins the satellite fix: a caller-provided dst is always
// used as the destination (returned as-is), nil dst allocates, and the
// Into variants never allocate.
func TestDstHonored(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{10, 20, 30}
	dst := make([]float64, 3)

	if got := AddScaled(dst, a, 2, b); &got[0] != &dst[0] {
		t.Fatal("AddScaled ignored caller dst")
	}
	if dst[2] != 3+2*30 {
		t.Fatalf("AddScaled wrong value: %v", dst)
	}
	if got := Lerp(dst, a, b, 0.5); &got[0] != &dst[0] {
		t.Fatal("Lerp ignored caller dst")
	}
	if dst[0] != 5.5 {
		t.Fatalf("Lerp wrong value: %v", dst)
	}
	if got := Sub(dst, b, a); &got[0] != &dst[0] {
		t.Fatal("Sub ignored caller dst")
	}
	if dst[1] != 18 {
		t.Fatalf("Sub wrong value: %v", dst)
	}

	// nil dst allocates a fresh result.
	if got := Sub(nil, b, a); len(got) != 3 || got[0] != 9 {
		t.Fatalf("Sub(nil,...) = %v", got)
	}
}

// TestIntoVariantsZeroAlloc asserts the alloc-free contract of the Into
// family — the buffers the pooled SearchContext reuses.
func TestIntoVariantsZeroAlloc(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{4, 3, 2, 1}
	dst := make([]float64, 4)
	if n := testing.AllocsPerRun(100, func() {
		AddScaledInto(dst, a, 0.5, b)
		LerpInto(dst, a, b, 0.25)
		SubInto(dst, a, b)
	}); n != 0 {
		t.Fatalf("Into variants allocate %.1f times per run, want 0", n)
	}
	if dst[0] != -3 {
		t.Fatalf("SubInto wrong value: %v", dst)
	}
}

// TestIntoVariantsPanicOnBadDst pins the panic-over-silent-alloc contract:
// a wrong-length dst is a programming error, not a reallocation request.
func TestIntoVariantsPanicOnBadDst(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{1, 2, 3}
	short := make([]float64, 2)
	for name, f := range map[string]func(){
		"AddScaledInto": func() { AddScaledInto(short, a, 1, b) },
		"LerpInto":      func() { LerpInto(short, a, b, 0.5) },
		"SubInto":       func() { SubInto(short, a, b) },
		"Sub mismatch":  func() { Sub(nil, a, b[:2]) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic on length mismatch", name)
				}
			}()
			f()
		}()
	}
}

// TestLerpAliasing pins that dst may alias the inputs.
func TestLerpAliasing(t *testing.T) {
	a := []float64{2, 4}
	b := []float64{4, 8}
	LerpInto(a, a, b, 0.5)
	if a[0] != 3 || a[1] != 6 {
		t.Fatalf("aliased LerpInto = %v", a)
	}
	SubInto(b, b, []float64{1, 1})
	if b[0] != 3 || b[1] != 7 {
		t.Fatalf("aliased SubInto = %v", b)
	}
}
