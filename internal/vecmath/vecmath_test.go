package vecmath

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %g, want 32", got)
	}
	if got := Dot(nil, nil); got != 0 {
		t.Fatalf("Dot(nil,nil) = %g, want 0", got)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestSumSquaresAndNorm(t *testing.T) {
	v := []float64{3, 4}
	if got := SumSquares(v); got != 25 {
		t.Fatalf("SumSquares = %g, want 25", got)
	}
	if got := Norm2(v); got != 5 {
		t.Fatalf("Norm2 = %g, want 5", got)
	}
}

func TestKahanSumPrecision(t *testing.T) {
	// 1 + 1e-16 repeated: naive summation loses the small terms.
	v := make([]float64, 1001)
	v[0] = 1
	for i := 1; i < len(v); i++ {
		v[i] = 1e-16
	}
	got := Sum(v)
	want := 1 + 1000e-16
	if math.Abs(got-want) > 1e-18 {
		t.Fatalf("Sum = %.20g, want %.20g", got, want)
	}
}

func TestMeanVariance(t *testing.T) {
	v := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(v); got != 5 {
		t.Fatalf("Mean = %g, want 5", got)
	}
	if got := Variance(v); got != 4 {
		t.Fatalf("Variance = %g, want 4", got)
	}
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Fatal("empty-slice mean/variance should be 0")
	}
}

func TestCovarianceSymmetry(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{2, 4, 5, 4}
	if Covariance(a, b) != Covariance(b, a) {
		t.Fatal("covariance not symmetric")
	}
}

func TestPearsonPerfectCorrelation(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{2, 4, 6, 8, 10}
	if got := Pearson(a, b); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Pearson = %g, want 1", got)
	}
	c := []float64{-1, -2, -3, -4, -5}
	if got := Pearson(a, c); math.Abs(got+1) > 1e-12 {
		t.Fatalf("Pearson = %g, want -1", got)
	}
}

func TestPearsonConstantDimension(t *testing.T) {
	a := []float64{1, 1, 1}
	b := []float64{1, 2, 3}
	if got := Pearson(a, b); got != 0 {
		t.Fatalf("Pearson with constant dim = %g, want 0", got)
	}
}

func TestPearsonBoundedProperty(t *testing.T) {
	f := func(a, b [8]float64) bool {
		// Map raw quick values into a bounded range; extreme magnitudes
		// overflow the covariance product and are not meaningful inputs.
		av := make([]float64, len(a))
		bv := make([]float64, len(b))
		for i := range a {
			av[i] = math.Remainder(a[i], 1e6)
			bv[i] = math.Remainder(b[i], 1e6)
			if math.IsNaN(av[i]) {
				av[i] = 0
			}
			if math.IsNaN(bv[i]) {
				bv[i] = 0
			}
		}
		r := Pearson(av, bv)
		return r >= -1 && r <= 1 && !math.IsNaN(r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLerpEndpoints(t *testing.T) {
	a := []float64{0, 10}
	b := []float64{10, 20}
	if got := Lerp(nil, a, b, 0); !EqualApprox(got, a, 0) {
		t.Fatalf("Lerp(0) = %v, want %v", got, a)
	}
	if got := Lerp(nil, a, b, 1); !EqualApprox(got, b, 0) {
		t.Fatalf("Lerp(1) = %v, want %v", got, b)
	}
	if got := Lerp(nil, a, b, 0.5); !EqualApprox(got, []float64{5, 15}, 1e-15) {
		t.Fatalf("Lerp(0.5) = %v", got)
	}
}

func TestAddScaled(t *testing.T) {
	got := AddScaled(nil, []float64{1, 2}, 3, []float64{10, 20})
	if !EqualApprox(got, []float64{31, 62}, 0) {
		t.Fatalf("AddScaled = %v", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := []float64{1, 2}
	c := Clone(a)
	c[0] = 99
	if a[0] != 1 {
		t.Fatal("Clone aliases its input")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 0})
	if lo != -1 || hi != 7 {
		t.Fatalf("MinMax = (%g,%g), want (-1,7)", lo, hi)
	}
}

func TestMinMaxPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MinMax(nil)
}

func TestClose(t *testing.T) {
	if !Close(1, 1+1e-12, 1e-9) {
		t.Fatal("Close should accept tiny relative error")
	}
	if Close(1, 2, 1e-9) {
		t.Fatal("Close should reject large error")
	}
	if !Close(1e15, 1e15*(1+1e-12), 1e-9) {
		t.Fatal("Close should be relative at large scale")
	}
}

func TestNormalCDFKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1.959963984540054, 0.975},
		{-1.959963984540054, 0.025},
		{3, 0.9986501019683699},
	}
	for _, c := range cases {
		if got := NormalCDF(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("NormalCDF(%g) = %.15g, want %.15g", c.x, got, c.want)
		}
	}
}

func TestNormalQuantileInvertsCDF(t *testing.T) {
	for _, p := range []float64{1e-10, 1e-4, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.9999, 1 - 1e-10} {
		x := NormalQuantile(p)
		if got := NormalCDF(x); math.Abs(got-p) > 1e-12 {
			t.Errorf("CDF(Quantile(%g)) = %g", p, got)
		}
	}
}

func TestNormalQuantileEdges(t *testing.T) {
	if !math.IsInf(NormalQuantile(0), -1) {
		t.Fatal("Quantile(0) should be -Inf")
	}
	if !math.IsInf(NormalQuantile(1), 1) {
		t.Fatal("Quantile(1) should be +Inf")
	}
	if !math.IsNaN(NormalQuantile(-0.1)) || !math.IsNaN(NormalQuantile(1.1)) {
		t.Fatal("out-of-range p should be NaN")
	}
}

func TestNormalQuantileMonotoneProperty(t *testing.T) {
	f := func(a, b float64) bool {
		pa := math.Abs(math.Mod(a, 1))
		pb := math.Abs(math.Mod(b, 1))
		if pa == 0 || pb == 0 || pa == pb {
			return true
		}
		if pa > pb {
			pa, pb = pb, pa
		}
		return NormalQuantile(pa) <= NormalQuantile(pb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
