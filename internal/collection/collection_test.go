package collection

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"brepartition/internal/bregman"
	"brepartition/internal/shard"
	"brepartition/internal/wire"
)

func TestRegistryLifecycle(t *testing.T) {
	root := t.TempDir()
	r, err := Open(root, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.List(); len(got) != 0 {
		t.Fatalf("fresh registry lists %d collections", len(got))
	}

	// Create three collections with different divergences.
	specs := map[string]wire.CollectionSpec{
		"docs":   {Divergence: "l2", Dim: 4, Shards: 2},
		"audio":  {Divergence: "is", Dim: 3, M: 2},
		"topics": {Divergence: "gkl", Dim: 5},
	}
	for name, spec := range specs {
		if _, err := r.Create(name, spec); err != nil {
			t.Fatalf("create %s: %v", name, err)
		}
	}
	if _, err := r.Create("docs", specs["docs"]); !errors.Is(err, wire.ErrCollectionExists) {
		t.Fatalf("duplicate create: %v", err)
	}
	if _, err := r.Create("no/slash", specs["docs"]); !errors.Is(err, wire.ErrBadCollection) {
		t.Fatalf("bad name create: %v", err)
	}
	if _, err := r.Create("nodim", wire.CollectionSpec{Divergence: "l2"}); !errors.Is(err, wire.ErrBadCollection) {
		t.Fatalf("dimless create: %v", err)
	}
	if _, err := r.Get("ghost"); !errors.Is(err, wire.ErrNoSuchCollection) {
		t.Fatalf("get missing: %v", err)
	}

	// Insert into each; tag some points in docs.
	docs, err := r.Get("docs")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		id, err := docs.Handle.Insert([]float64{float64(i) + 1, 2, 3, 4})
		if err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			if err := docs.Tags.Add(id, []string{"even", "doc"}); err != nil {
				t.Fatal(err)
			}
		}
	}
	audio, _ := r.Get("audio")
	if _, err := audio.Handle.Insert([]float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}

	// Filtered predicate compiles and matches only tagged ids.
	keep, err := docs.Predicate(&wire.Filter{Tags: []string{"even"}})
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 6; id++ {
		if keep(id) != (id%2 == 0) {
			t.Fatalf("predicate(%d) = %v", id, keep(id))
		}
	}
	if _, err := docs.Predicate(&wire.Filter{Tags: nil}); !errors.Is(err, wire.ErrBadFilter) {
		t.Fatalf("empty filter: %v", err)
	}
	if _, err := docs.Predicate(&wire.Filter{Tags: []string{"x"}, Mode: "some"}); !errors.Is(err, wire.ErrBadFilter) {
		t.Fatalf("bad mode: %v", err)
	}

	// Reopen: everything (points, tags, specs) survives.
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r, err = Open(root, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if names := listNames(r); len(names) != 3 {
		t.Fatalf("reopened names: %v", names)
	}
	docs, err = r.Get("docs")
	if err != nil {
		t.Fatal(err)
	}
	if docs.Handle.N() != 6 || docs.Spec.Divergence != "l2" || docs.Handle.Dim() != 4 {
		t.Fatalf("reopened docs: n=%d spec=%+v", docs.Handle.N(), docs.Spec)
	}
	keep, err = docs.Predicate(&wire.Filter{Tags: []string{"even", "doc"}, Mode: wire.FilterAll})
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 6; id++ {
		if keep(id) != (id%2 == 0) {
			t.Fatalf("reopened predicate(%d) = %v", id, keep(id))
		}
	}

	// Drop removes the directory; recreate under the same name is empty.
	if err := r.Drop("audio"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get("audio"); !errors.Is(err, wire.ErrNoSuchCollection) {
		t.Fatalf("get dropped: %v", err)
	}
	if dirExists(filepath.Join(root, collectionsSubdir, "audio")) {
		t.Fatal("dropped directory still on disk")
	}
	audio, err = r.Create("audio", specs["audio"])
	if err != nil {
		t.Fatal(err)
	}
	if audio.Handle.N() != 0 {
		t.Fatalf("recreated collection has %d points", audio.Handle.N())
	}
}

func TestRegistryLegacyAdoption(t *testing.T) {
	root := t.TempDir()
	// Write a pre-collections single-index root.
	d, err := shard.BuildDurable(bregman.GeneralizedKL{},
		[][]float64{{1, 2}, {3, 4}, {5, 6}}, root, shard.DurableOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Insert([]float64{7, 8}); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(root, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	def, err := r.Get(wire.DefaultCollection)
	if err != nil {
		t.Fatal(err)
	}
	if def.Handle.N() != 4 || def.Spec.Divergence != "gkl" || def.Spec.Dim != 2 {
		t.Fatalf("adopted default: n=%d spec=%+v", def.Handle.N(), def.Spec)
	}
	if err := r.Drop(wire.DefaultCollection); err == nil {
		t.Fatal("legacy default must not be droppable")
	}
	// New collections coexist beside the adopted root.
	if _, err := r.Create("extra", wire.CollectionSpec{Divergence: "l2", Dim: 2}); err != nil {
		t.Fatal(err)
	}
	if names := listNames(r); len(names) != 2 {
		t.Fatalf("names: %v", names)
	}
}

func TestRegistrySweepsStaging(t *testing.T) {
	root := t.TempDir()
	colRoot := filepath.Join(root, collectionsSubdir)
	if err := os.MkdirAll(filepath.Join(colRoot, stagingPrefix+"half"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(colRoot, trashPrefix+"gone"), 0o755); err != nil {
		t.Fatal(err)
	}
	r, err := Open(root, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if len(listNames(r)) != 0 {
		t.Fatalf("litter adopted as collections: %v", listNames(r))
	}
	if dirExists(filepath.Join(colRoot, stagingPrefix+"half")) || dirExists(filepath.Join(colRoot, trashPrefix+"gone")) {
		t.Fatal("staging/trash litter not swept")
	}
}

func TestTagStoreTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tags.log")
	ts, err := OpenTags(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := ts.Add(i, []string{"a", "b"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := ts.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the last record mid-payload.
	st, _ := os.Stat(path)
	if err := os.Truncate(path, st.Size()-3); err != nil {
		t.Fatal(err)
	}
	ts, err = OpenTags(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()
	for i := 0; i < 4; i++ {
		if got := ts.Tags(i); len(got) != 2 {
			t.Fatalf("id %d lost tags: %v", i, got)
		}
	}
	if got := ts.Tags(4); got != nil {
		t.Fatalf("torn record survived: %v", got)
	}
	// The store keeps appending cleanly past the truncation.
	if err := ts.Add(9, []string{"c"}); err != nil {
		t.Fatal(err)
	}
	if got := ts.Tags(9); len(got) != 1 || got[0] != "c" {
		t.Fatalf("append after tear: %v", got)
	}
}

func listNames(r *Registry) []string {
	var names []string
	for _, c := range r.List() {
		names = append(names, c.Name)
	}
	return names
}
