package collection

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// TagStore is a collection's metadata tag log: an append-only,
// CRC-framed, fsynced file mapping global point ids to string tags, plus
// the in-memory inverted view filtered search matches against.
//
// Record framing (little-endian): u32 payloadLen | u32 crc | payload,
// payload = u64 id | u16 ntags | ntags × (u16 len | bytes). Replay stops
// at the first torn or corrupt record and truncates the file there — the
// same drop-the-tail policy as the WAL, so a crash mid-append loses at
// most the unacknowledged record.
//
// Tags are written once at insert time; a deleted point's tags are left
// in place (tombstoned ids never reach the search predicate), and ids
// are globally stable across compaction, so the log never needs
// rewriting.
type TagStore struct {
	mu   sync.RWMutex
	f    *os.File
	byID map[int][]string
	buf  []byte
}

const (
	tagRecHeader = 8 // u32 len | u32 crc
	maxTagRec    = 1 << 20
)

// NewMemTags builds a memory-only TagStore: tags work for filtered
// search but are not persisted. Used by the static single-index server
// mode, which has no collection directory to log into.
func NewMemTags() *TagStore {
	return &TagStore{byID: make(map[int][]string)}
}

// OpenTags opens (or creates) the tag log at path and replays it.
func OpenTags(path string) (*TagStore, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	t := &TagStore{f: f, byID: make(map[int][]string)}
	good, err := t.replay()
	if err != nil {
		f.Close()
		return nil, err
	}
	// Drop any torn tail, then position appends after the last good record.
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	return t, nil
}

// replay scans the log, loading every intact record; it returns the
// offset just past the last good record.
func (t *TagStore) replay() (int64, error) {
	var off int64
	hdr := make([]byte, tagRecHeader)
	for {
		if _, err := io.ReadFull(t.f, hdr); err != nil {
			return off, nil // clean EOF or torn header: stop here
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		if n == 0 || n > maxTagRec {
			return off, nil // garbage length: treat as torn tail
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(t.f, payload); err != nil {
			return off, nil
		}
		if crc32.ChecksumIEEE(payload) != crc {
			return off, nil
		}
		id, tags, err := decodeTagRec(payload)
		if err != nil {
			return off, nil
		}
		t.byID[id] = tags
		off += int64(tagRecHeader) + int64(n)
	}
}

func decodeTagRec(payload []byte) (int, []string, error) {
	if len(payload) < 10 {
		return 0, nil, fmt.Errorf("collection: short tag record")
	}
	id := int(int64(binary.LittleEndian.Uint64(payload[0:8])))
	ntags := int(binary.LittleEndian.Uint16(payload[8:10]))
	b := payload[10:]
	tags := make([]string, 0, ntags)
	for i := 0; i < ntags; i++ {
		if len(b) < 2 {
			return 0, nil, fmt.Errorf("collection: truncated tag record")
		}
		n := int(binary.LittleEndian.Uint16(b))
		b = b[2:]
		if len(b) < n {
			return 0, nil, fmt.Errorf("collection: truncated tag record")
		}
		tags = append(tags, string(b[:n]))
		b = b[n:]
	}
	if len(b) != 0 {
		return 0, nil, fmt.Errorf("collection: trailing tag record bytes")
	}
	return id, tags, nil
}

// Add durably associates tags with global id (fsynced before returning)
// and publishes them to the in-memory view. Re-adding an id overwrites
// its tags (last record wins, both in memory and on replay).
func (t *TagStore) Add(id int, tags []string) error {
	if id < 0 {
		return fmt.Errorf("collection: negative tag id %d", id)
	}
	for _, tag := range tags {
		if tag == "" || len(tag) > maxTagRec {
			return fmt.Errorf("collection: bad tag %q", tag)
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.f == nil { // memory-only store: no log to append to
		t.byID[id] = append([]string(nil), tags...)
		return nil
	}
	payload := t.buf[:0]
	payload = binary.LittleEndian.AppendUint64(payload, uint64(int64(id)))
	payload = binary.LittleEndian.AppendUint16(payload, uint16(len(tags)))
	for _, tag := range tags {
		payload = binary.LittleEndian.AppendUint16(payload, uint16(len(tag)))
		payload = append(payload, tag...)
	}
	t.buf = payload
	var hdr [tagRecHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := t.f.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := t.f.Write(payload); err != nil {
		return err
	}
	if err := t.f.Sync(); err != nil {
		return err
	}
	t.byID[id] = append([]string(nil), tags...)
	return nil
}

// Tags returns the tags recorded for id (nil if none).
func (t *TagStore) Tags(id int) []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return append([]string(nil), t.byID[id]...)
}

// Predicate compiles a tag query into the id predicate the leaf scan
// calls: all=false admits ids carrying at least one query tag, all=true
// only ids carrying every one. The predicate is safe under concurrent
// Add.
func (t *TagStore) Predicate(tags []string, all bool) func(id int) bool {
	want := make(map[string]struct{}, len(tags))
	for _, tag := range tags {
		want[tag] = struct{}{}
	}
	return func(id int) bool {
		t.mu.RLock()
		have := t.byID[id]
		t.mu.RUnlock()
		if all {
			for w := range want {
				found := false
				for _, tag := range have {
					if tag == w {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
			return true
		}
		for _, tag := range have {
			if _, ok := want[tag]; ok {
				return true
			}
		}
		return false
	}
}

// Close closes the log file; the store stays readable in memory.
func (t *TagStore) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.f == nil {
		return nil
	}
	err := t.f.Close()
	t.f = nil
	return err
}
