// Package collection is the multi-tenant index registry: one breserved
// process hosts many named collections, each an independent durable
// sharded index with its own divergence, geometry, shard layout, tag
// store, and admission quota.
//
// Directory layout under the registry root:
//
//	root/collections/<name>/spec.json      — the collection's CollectionSpec
//	root/collections/<name>/durable/       — its WAL + snapshot (shard.Durable)
//	root/collections/<name>/tags.log       — its append-only tag log
//
// Legacy adoption: a root that carries wal/ and snapshot/ directly — the
// layout every pre-collections breserved wrote — is adopted as the
// "default" collection's durable directory in place. Nothing moves on
// disk; old deployments upgrade by restarting, and the files stay
// downgrade-compatible.
//
// Lifecycle is crash-atomic by construction: Create stages the full
// collection under a hidden .staging- directory and commits it with a
// single rename; Drop renames to a hidden .trash- directory before
// deleting. A crash at any point leaves either a fully present or a
// fully absent collection, and Open sweeps hidden leftovers.
package collection

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"brepartition/internal/bregman"
	"brepartition/internal/coldtier"
	"brepartition/internal/shard"
	"brepartition/internal/wire"
)

const (
	collectionsSubdir = "collections"
	durableSubdir     = "durable"
	specFile          = "spec.json"
	tagsFile          = "tags.log"
	stagingPrefix     = ".staging-"
	trashPrefix       = ".trash-"
)

// Options configures a registry.
type Options struct {
	// Durable is the template every collection's shard.DurableOptions
	// derives from: sync policy, segment size, and checkpoint threshold
	// apply to all collections; Shards, Dim, and Core.M are overridden by
	// each collection's spec (spec zeros fall back to the template).
	Durable shard.DurableOptions
}

// durableFor specializes the template to one collection's spec.
func (o Options) durableFor(spec wire.CollectionSpec) shard.DurableOptions {
	d := o.Durable
	d.Dim = spec.Dim
	if spec.Shards > 0 {
		d.Shards = spec.Shards
	}
	if spec.M > 0 {
		d.Core.M = spec.M
	}
	return d
}

// Collection is one open named index: a hot-swappable durable handle plus
// the tag store filtered search matches against.
type Collection struct {
	Name string
	Spec wire.CollectionSpec
	// Handle is the swappable serving reference; reloads go through
	// Reopen.
	Handle *shard.Handle
	// Tags is the collection's metadata tag store.
	Tags *TagStore
	// Reopen opens a fresh durable generation over the collection's
	// directory — the closure Handle.Reload swaps in.
	Reopen func() (*shard.Durable, error)
}

// Info snapshots the collection's listing entry.
func (c *Collection) Info() wire.CollectionInfo {
	info := wire.CollectionInfo{
		Name:     c.Name,
		Spec:     c.Spec,
		Status:   "ok",
		N:        c.Handle.N(),
		Live:     c.Handle.Live(),
		Version:  c.Handle.Version(),
		WALBytes: c.Handle.WALSize(),
	}
	if err := c.Handle.Err(); err != nil {
		info.Status = "degraded: " + err.Error()
	}
	return info
}

// Predicate compiles a wire filter into the id predicate the leaf scan
// consumes (nil filter → nil predicate → unfiltered search).
func (c *Collection) Predicate(f *wire.Filter) (func(id int) bool, error) {
	if f == nil {
		return nil, nil
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return c.Tags.Predicate(f.Tags, f.Mode == wire.FilterAll), nil
}

// Registry is the set of open collections under one root directory.
type Registry struct {
	root string
	opts Options

	mu   sync.RWMutex
	cols map[string]*Collection
	// legacyDefault: the default collection's durable dir is the root
	// itself (pre-collections layout); it cannot be dropped.
	legacyDefault bool
}

// ValidateSpec rejects specs no collection can be built from.
func ValidateSpec(spec wire.CollectionSpec) error {
	if _, err := bregman.ByName(spec.Divergence); err != nil {
		return fmt.Errorf("%w: %v", wire.ErrBadCollection, err)
	}
	if spec.Dim < 1 || spec.Dim > wire.MaxDim {
		return fmt.Errorf("%w: dim %d out of range", wire.ErrBadCollection, spec.Dim)
	}
	if spec.M < 0 || spec.Shards < 0 {
		return fmt.Errorf("%w: negative m or shards", wire.ErrBadCollection)
	}
	if q := spec.Quota; q != nil && (q.MaxInflight < 0 || q.MaxQueue < 0) {
		return fmt.Errorf("%w: negative quota", wire.ErrBadCollection)
	}
	if c := spec.Cold; c != nil {
		if c.Bits < 0 || c.Bits > 16 {
			return fmt.Errorf("%w: cold tier bits %d out of range [0,16]", wire.ErrBadCollection, c.Bits)
		}
		if c.CacheBytes < 0 || c.Prefetch < 0 {
			return fmt.Errorf("%w: negative cold tier cache or prefetch", wire.ErrBadCollection)
		}
	}
	return nil
}

// ColdConfig translates a spec's cold section into a coldtier.Config
// (zero Config when the spec does not opt in).
func ColdConfig(spec wire.CollectionSpec) (coldtier.Config, bool) {
	c := spec.Cold
	if c == nil {
		return coldtier.Config{}, false
	}
	return coldtier.Config{Bits: c.Bits, CacheBytes: c.CacheBytes, Prefetch: c.Prefetch}, true
}

// Open opens every collection under root (creating the directory tree if
// needed), adopting a legacy single-index root as the default collection.
// Hidden staging/trash leftovers from a crashed Create or Drop are swept.
func Open(root string, opts Options) (*Registry, error) {
	r := &Registry{root: root, opts: opts, cols: make(map[string]*Collection)}
	colRoot := filepath.Join(root, collectionsSubdir)
	if err := os.MkdirAll(colRoot, 0o755); err != nil {
		return nil, err
	}

	// Legacy adoption: a pre-collections root serves as "default" in place.
	if dirExists(filepath.Join(root, "wal")) || dirExists(filepath.Join(root, "snapshot")) {
		c, err := r.openLegacyDefault()
		if err != nil {
			return nil, fmt.Errorf("collection: adopting legacy root as %q: %w", wire.DefaultCollection, err)
		}
		r.cols[wire.DefaultCollection] = c
		r.legacyDefault = true
	}

	entries, err := os.ReadDir(colRoot)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() {
			continue
		}
		if len(name) > 0 && name[0] == '.' {
			// Crashed staging or trash: fully absent by contract, sweep it.
			os.RemoveAll(filepath.Join(colRoot, name))
			continue
		}
		if !wire.ValidName(name) {
			return nil, fmt.Errorf("collection: directory %q is not a valid collection name", name)
		}
		if _, dup := r.cols[name]; dup {
			return nil, fmt.Errorf("collection: %q exists both as legacy root and directory", name)
		}
		c, err := r.openAt(name, filepath.Join(colRoot, name))
		if err != nil {
			r.Close()
			return nil, fmt.Errorf("collection: opening %q: %w", name, err)
		}
		r.cols[name] = c
	}
	return r, nil
}

// openLegacyDefault opens the root itself as the default collection,
// synthesizing its spec from the recovered index.
func (r *Registry) openLegacyDefault() (*Collection, error) {
	dopts := r.opts.Durable
	d, err := shard.OpenDurable(r.root, dopts)
	if err != nil {
		return nil, err
	}
	tags, err := OpenTags(filepath.Join(r.root, tagsFile))
	if err != nil {
		d.Close()
		return nil, err
	}
	spec := wire.CollectionSpec{
		Divergence: d.Divergence().Name(),
		Dim:        d.Dim(),
		M:          d.M(),
		Shards:     d.Shards(),
	}
	root := r.root
	return &Collection{
		Name:   wire.DefaultCollection,
		Spec:   spec,
		Handle: shard.NewHandle(d),
		Tags:   tags,
		Reopen: func() (*shard.Durable, error) { return shard.OpenDurable(root, dopts) },
	}, nil
}

// openAt opens one collection directory: spec.json, durable state, tags.
func (r *Registry) openAt(name, dir string) (*Collection, error) {
	spec, err := readSpec(filepath.Join(dir, specFile))
	if err != nil {
		return nil, err
	}
	if err := ValidateSpec(spec); err != nil {
		return nil, err
	}
	dopts := r.opts.durableFor(spec)
	durDir := filepath.Join(dir, durableSubdir)
	d, err := shard.OpenDurable(durDir, dopts)
	if err != nil {
		return nil, err
	}
	tags, err := OpenTags(filepath.Join(dir, tagsFile))
	if err != nil {
		d.Close()
		return nil, err
	}
	h := shard.NewHandle(d)
	if cfg, ok := ColdConfig(spec); ok {
		// Spec-level opt-in: tiers build (or reopen) now, so the collection
		// serves under its memory budget from the first query. Shards that
		// fill up afterwards serve hot until the next reload re-ensures.
		if err := h.EnableColdTier(cfg); err != nil {
			tags.Close()
			d.Close()
			return nil, fmt.Errorf("collection: cold tier for %q: %w", name, err)
		}
	}
	return &Collection{
		Name:   name,
		Spec:   spec,
		Handle: h,
		Tags:   tags,
		Reopen: func() (*shard.Durable, error) { return shard.OpenDurable(durDir, dopts) },
	}, nil
}

// Create builds a new empty collection from spec and opens it. The
// staging directory holds the complete collection (spec.json, an empty
// durable index, an empty tag log) before one rename commits it; a crash
// mid-create leaves only hidden staging litter Open sweeps.
func (r *Registry) Create(name string, spec wire.CollectionSpec) (*Collection, error) {
	if !wire.ValidName(name) {
		return nil, fmt.Errorf("%w: %q", wire.ErrBadCollection, name)
	}
	if err := ValidateSpec(spec); err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.cols[name]; ok {
		return nil, fmt.Errorf("%w: %q", wire.ErrCollectionExists, name)
	}

	colRoot := filepath.Join(r.root, collectionsSubdir)
	staging := filepath.Join(colRoot, stagingPrefix+name)
	final := filepath.Join(colRoot, name)
	os.RemoveAll(staging)
	if err := os.MkdirAll(staging, 0o755); err != nil {
		return nil, err
	}
	ok := false
	defer func() {
		if !ok {
			os.RemoveAll(staging)
		}
	}()

	div, err := bregman.ByName(spec.Divergence)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", wire.ErrBadCollection, err)
	}
	spec.Divergence = div.Name() // canonical name, aliases resolved
	if err := writeSpec(filepath.Join(staging, specFile), spec); err != nil {
		return nil, err
	}
	d, err := shard.BuildDurable(div, nil, filepath.Join(staging, durableSubdir), r.opts.durableFor(spec))
	if err != nil {
		return nil, err
	}
	if err := d.Close(); err != nil {
		return nil, err
	}
	if err := os.Rename(staging, final); err != nil {
		return nil, err
	}
	ok = true

	c, err := r.openAt(name, final)
	if err != nil {
		return nil, err
	}
	r.cols[name] = c
	return c, nil
}

// Get returns the named open collection.
func (r *Registry) Get(name string) (*Collection, error) {
	r.mu.RLock()
	c, ok := r.cols[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", wire.ErrNoSuchCollection, name)
	}
	return c, nil
}

// List returns every open collection in name order.
func (r *Registry) List() []*Collection {
	r.mu.RLock()
	out := make([]*Collection, 0, len(r.cols))
	for _, c := range r.cols {
		out = append(out, c)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Drop closes and permanently deletes the named collection. The rename
// into a hidden trash directory is the commit point: after it, the
// collection is gone even if the process dies before RemoveAll finishes.
// A legacy-adopted default cannot be dropped — its files ARE the root.
func (r *Registry) Drop(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.cols[name]
	if !ok {
		return fmt.Errorf("%w: %q", wire.ErrNoSuchCollection, name)
	}
	if name == wire.DefaultCollection && r.legacyDefault {
		return fmt.Errorf("collection: %q is the legacy server root and cannot be dropped", name)
	}
	c.Handle.Close()
	c.Tags.Close()
	delete(r.cols, name)
	colRoot := filepath.Join(r.root, collectionsSubdir)
	trash := filepath.Join(colRoot, trashPrefix+name)
	os.RemoveAll(trash)
	if err := os.Rename(filepath.Join(colRoot, name), trash); err != nil {
		return err
	}
	return os.RemoveAll(trash)
}

// Close closes every collection (WALs, tag logs). The directories remain
// reopenable.
func (r *Registry) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var first error
	for _, c := range r.cols {
		if err := c.Handle.Close(); err != nil && first == nil {
			first = err
		}
		if err := c.Tags.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func readSpec(path string) (wire.CollectionSpec, error) {
	var spec wire.CollectionSpec
	b, err := os.ReadFile(path)
	if err != nil {
		return spec, err
	}
	if err := json.Unmarshal(b, &spec); err != nil {
		return spec, fmt.Errorf("collection: bad %s: %w", specFile, err)
	}
	return spec, nil
}

// writeSpec persists the spec with write-fsync-rename so a torn write
// can never commit a half spec.
func writeSpec(path string, spec wire.CollectionSpec) error {
	b, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func dirExists(path string) bool {
	st, err := os.Stat(path)
	return err == nil && st.IsDir()
}
