package bregman

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// domainSample draws a coordinate strictly inside div's domain.
func domainSample(div Divergence, rng *rand.Rand) float64 {
	lo, _ := div.Domain()
	if math.IsInf(lo, -1) {
		return 4 * (rng.Float64() - 0.5) // (-2, 2)
	}
	return lo + 0.1 + 4*rng.Float64() // positive domain
}

func domainVec(div Divergence, d int, rng *rand.Rand) []float64 {
	v := make([]float64, d)
	for i := range v {
		v[i] = domainSample(div, rng)
	}
	return v
}

func TestDistanceNonNegativeAndIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, div := range All() {
		for trial := 0; trial < 200; trial++ {
			x := domainVec(div, 8, rng)
			y := domainVec(div, 8, rng)
			d := Distance(div, x, y)
			if d < 0 || math.IsNaN(d) {
				t.Fatalf("%s: Distance = %g for x=%v y=%v", div.Name(), d, x, y)
			}
			if self := Distance(div, x, x); self > 1e-9 {
				t.Fatalf("%s: Distance(x,x) = %g, want ~0", div.Name(), self)
			}
		}
	}
}

func TestDistanceAsymmetry(t *testing.T) {
	// Bregman divergences are generally asymmetric; IS distance must be.
	div := ItakuraSaito{}
	x := []float64{1, 2, 3}
	y := []float64{3, 1, 2}
	if Distance(div, x, y) == Distance(div, y, x) {
		t.Fatal("IS distance unexpectedly symmetric on asymmetric input")
	}
}

func TestSquaredEuclideanClosedForm(t *testing.T) {
	div := SquaredEuclidean{}
	x := []float64{1, -2, 0.5}
	y := []float64{0, 1, 2}
	want := 1.0 + 9 + 2.25
	if got := Distance(div, x, y); math.Abs(got-want) > 1e-12 {
		t.Fatalf("L2² = %g, want %g", got, want)
	}
}

func TestItakuraSaitoClosedForm(t *testing.T) {
	div := ItakuraSaito{}
	x := []float64{2}
	y := []float64{1}
	want := 2.0 - math.Log(2) - 1
	if got := Distance(div, x, y); math.Abs(got-want) > 1e-12 {
		t.Fatalf("ISD = %g, want %g", got, want)
	}
}

func TestExponentialClosedForm(t *testing.T) {
	div := Exponential{}
	x := []float64{1}
	y := []float64{0}
	// e^x − (x−y+1)e^y = e − 2.
	want := math.E - 2
	if got := Distance(div, x, y); math.Abs(got-want) > 1e-12 {
		t.Fatalf("ED = %g, want %g", got, want)
	}
}

func TestGeneralizedKLClosedForm(t *testing.T) {
	div := GeneralizedKL{}
	x := []float64{2}
	y := []float64{1}
	want := 2*math.Log(2) - 2 + 1
	if got := Distance(div, x, y); math.Abs(got-want) > 1e-12 {
		t.Fatalf("GKL = %g, want %g", got, want)
	}
}

func TestBurgEquivalentToIS(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		x := domainVec(BurgEntropy{}, 6, rng)
		y := domainVec(BurgEntropy{}, 6, rng)
		a := Distance(BurgEntropy{}, x, y)
		b := Distance(ItakuraSaito{}, x, y)
		if math.Abs(a-b) > 1e-9*(1+b) {
			t.Fatalf("Burg %g != IS %g (linear terms must cancel)", a, b)
		}
	}
}

func TestShannonEquivalentToGKL(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		x := domainVec(ShannonEntropy{}, 6, rng)
		y := domainVec(ShannonEntropy{}, 6, rng)
		a := Distance(ShannonEntropy{}, x, y)
		b := Distance(GeneralizedKL{}, x, y)
		if math.Abs(a-b) > 1e-9*(1+b) {
			t.Fatalf("Shannon %g != GKL %g", a, b)
		}
	}
}

func TestGradInvIsInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, div := range All() {
		for trial := 0; trial < 300; trial++ {
			x := domainSample(div, rng)
			back := div.GradInv(div.Grad(x))
			if math.Abs(back-x) > 1e-9*(1+math.Abs(x)) {
				t.Fatalf("%s: GradInv(Grad(%g)) = %g", div.Name(), x, back)
			}
		}
	}
}

func TestPhiConvexityProperty(t *testing.T) {
	// φ((a+b)/2) ≤ (φ(a)+φ(b))/2 for all generators on their domain.
	rng := rand.New(rand.NewSource(5))
	for _, div := range All() {
		f := func(seed int64) bool {
			r := rand.New(rand.NewSource(seed))
			_ = rng
			a := domainSample(div, r)
			b := domainSample(div, r)
			mid := div.Phi((a + b) / 2)
			avg := (div.Phi(a) + div.Phi(b)) / 2
			return mid <= avg+1e-12*(1+math.Abs(avg))
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Fatalf("%s: convexity violated: %v", div.Name(), err)
		}
	}
}

func TestGradMatchesNumericalDerivative(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, div := range All() {
		for trial := 0; trial < 100; trial++ {
			x := domainSample(div, rng)
			h := 1e-6 * (1 + math.Abs(x))
			num := (div.Phi(x+h) - div.Phi(x-h)) / (2 * h)
			if math.Abs(num-div.Grad(x)) > 1e-4*(1+math.Abs(num)) {
				t.Fatalf("%s: Grad(%g)=%g, numeric %g", div.Name(), x, div.Grad(x), num)
			}
		}
	}
}

func TestDistanceTermMatchesSum(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, div := range All() {
		x := domainVec(div, 10, rng)
		y := domainVec(div, 10, rng)
		var sum float64
		for j := range x {
			sum += DistanceTerm(div, x[j], y[j])
		}
		if sum < 0 {
			sum = 0
		}
		if d := Distance(div, x, y); math.Abs(d-sum) > 1e-9*(1+math.Abs(sum)) {
			t.Fatalf("%s: Distance %g != Σterms %g", div.Name(), d, sum)
		}
	}
}

func TestDomainChecks(t *testing.T) {
	if InDomain(ItakuraSaito{}, []float64{1, -1}) {
		t.Fatal("negative coordinate should be outside IS domain")
	}
	if !InDomain(ItakuraSaito{}, []float64{1, 2}) {
		t.Fatal("positive coordinates should be inside IS domain")
	}
	if InDomain(SquaredEuclidean{}, []float64{math.NaN()}) {
		t.Fatal("NaN should never be in domain")
	}
	err := CheckDomain(GeneralizedKL{}, []float64{1, 0})
	if !errors.Is(err, ErrDomain) {
		t.Fatalf("CheckDomain error = %v, want ErrDomain", err)
	}
	if err := CheckDomain(Exponential{}, []float64{-100, 100}); err != nil {
		t.Fatalf("exp domain is all of R: %v", err)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"l2", "is", "ISD", "ed", "ED", "gkl", "shannon", "burg"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name should error")
	}
}

func TestDistancePanicsOnDimMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Distance(SquaredEuclidean{}, []float64{1}, []float64{1, 2})
}

func TestMahalanobisWeight(t *testing.T) {
	m := Mahalanobis{W: 2}
	// D(x,y) = 2(x−y)² per dim.
	if got := Distance(m, []float64{3}, []float64{1}); math.Abs(got-8) > 1e-12 {
		t.Fatalf("Mahalanobis = %g, want 8", got)
	}
}

func TestLpNormGenerator(t *testing.T) {
	l := LpNorm{P: 3}
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 50; trial++ {
		x := domainVec(l, 4, rng)
		y := domainVec(l, 4, rng)
		if d := Distance(l, x, y); d < 0 || math.IsNaN(d) {
			t.Fatalf("Lp distance = %g", d)
		}
	}
}

func TestGradVecGradInvVecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, div := range All() {
		y := domainVec(div, 12, rng)
		g := GradVec(div, nil, y)
		back := GradInvVec(div, nil, g)
		for j := range y {
			if math.Abs(back[j]-y[j]) > 1e-8*(1+math.Abs(y[j])) {
				t.Fatalf("%s: round trip %v -> %v", div.Name(), y[j], back[j])
			}
		}
	}
}

// TestByNameUnknownEnumeratesRegistry pins the actionable error contract:
// a typo'd divergence name tells the caller exactly what IS registered,
// and everything Names lists resolves.
func TestByNameUnknownEnumeratesRegistry(t *testing.T) {
	_, err := ByName("euclidean")
	if err == nil {
		t.Fatal("unknown name resolved")
	}
	for _, name := range Names() {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not list registered name %q", err, name)
		}
		div, rerr := ByName(name)
		if rerr != nil {
			t.Fatalf("Names() entry %q does not resolve: %v", name, rerr)
		}
		if got := div.Name(); got != name {
			t.Fatalf("ByName(%q).Name() = %q", name, got)
		}
	}
	if !strings.Contains(err.Error(), `"euclidean"`) {
		t.Fatalf("error does not echo the bad name: %q", err)
	}
}
