package bregman

import (
	"math"
	"testing"
)

// mapIntoDomain folds an arbitrary fuzzed float into a numerically safe
// interior of div's domain. Full-line generators are folded into [-30, 30]
// (Exponential's φ(t)=eᵗ overflows float64 past ~709, which would turn the
// invariants into inf−inf noise rather than exercising the math); positive
// generators into [1e-3, 1e3].
func mapIntoDomain(div Divergence, v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		v = 1
	}
	lo, _ := div.Domain()
	if lo == 0 {
		m := math.Mod(math.Abs(v), 3) // exponent in [0, 3)
		return 1e-3 * math.Pow(10, m) // [1e-3, 1e0·10^3) = [1e-3, 1e3)
	}
	return math.Mod(v, 30)
}

// FuzzDistance checks the divergence invariants every index structure
// relies on, across the whole registry:
//
//   - D(x, y) is finite and non-negative (Theorem: φ strictly convex),
//   - D(x, x) = 0 exactly,
//   - every per-coordinate term is non-negative up to roundoff,
//   - GradInv is the inverse of Grad on the domain (the Legendre dual
//     coordinate map the BB-tree geodesic projection depends on).
//
// Run the stored corpus with `go test`; explore with
// `go test -fuzz=FuzzDistance ./internal/bregman`.
func FuzzDistance(f *testing.F) {
	f.Add(1.0, 2.0, 3.0, 4.0)
	f.Add(0.5, 0.5, 0.5, 0.5)
	f.Add(-7.25, 12.0, 1e-3, 1e3)
	f.Add(29.9, -29.9, 0.001, 999.0)
	f.Add(0.0, -0.0, math.Pi, math.E)

	f.Fuzz(func(t *testing.T, a, b, c, d float64) {
		for _, div := range All() {
			x := []float64{mapIntoDomain(div, a), mapIntoDomain(div, b)}
			y := []float64{mapIntoDomain(div, c), mapIntoDomain(div, d)}
			if !InDomain(div, x) || !InDomain(div, y) {
				t.Fatalf("%s: mapIntoDomain produced out-of-domain input x=%v y=%v",
					div.Name(), x, y)
			}

			dist := Distance(div, x, y)
			if math.IsNaN(dist) || math.IsInf(dist, 0) || dist < 0 {
				t.Errorf("%s: D(%v, %v) = %v, want finite ≥ 0", div.Name(), x, y, dist)
			}
			if self := Distance(div, x, x); self != 0 {
				t.Errorf("%s: D(x, x) = %v, want 0 (x=%v)", div.Name(), self, x)
			}

			for j := range x {
				term := DistanceTerm(div, x[j], y[j])
				// Convexity makes each term ≥ 0; allow roundoff scaled to
				// the magnitudes that entered the subtraction.
				scale := 1 + math.Abs(div.Phi(x[j])) + math.Abs(div.Phi(y[j])) +
					math.Abs(div.Grad(y[j])*(x[j]-y[j]))
				if term < -1e-9*scale {
					t.Errorf("%s: term(%v, %v) = %v, want ≥ 0", div.Name(), x[j], y[j], term)
				}
			}

			for _, v := range []float64{x[0], x[1], y[0], y[1]} {
				got := div.GradInv(div.Grad(v))
				if math.IsNaN(got) || math.Abs(got-v) > 1e-6*(1+math.Abs(v)) {
					t.Errorf("%s: GradInv(Grad(%v)) = %v, want identity", div.Name(), v, got)
				}
			}
		}
	})
}
