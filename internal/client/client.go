// Package client is the Go client for a breserved server: a thin,
// connection-reusing wrapper over net/http that speaks both the JSON
// routes and the length-prefixed binary protocol of internal/wire.
//
// One Client is safe for concurrent use and keeps a pooled transport, so
// concurrent requests multiplex over warm keep-alive connections instead
// of paying a dial + handshake each. BatchSearch submits many queries in
// one request — the server answers them through its batch engine — and
// single-query Search calls lean on the server-side coalescing window
// instead of client-side batching.
//
// Load-shed (429) and deadline (504) responses surface as typed errors
// (ErrOverloaded with its Retry-After hint, ErrDeadline) so callers can
// implement honest backoff.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"brepartition/internal/wire"
)

// ErrOverloaded reports a 429 load-shed; errors.Is matches it and
// errors.As an *OverloadedError carrying the server's Retry-After hint.
var ErrOverloaded = errors.New("client: server overloaded")

// ErrDeadline reports a request that missed its deadline server-side
// (504).
var ErrDeadline = errors.New("client: request deadline exceeded")

// OverloadedError carries the Retry-After hint of a 429.
type OverloadedError struct {
	RetryAfter time.Duration
}

func (e *OverloadedError) Error() string {
	return fmt.Sprintf("client: server overloaded (retry after %v)", e.RetryAfter)
}

func (e *OverloadedError) Is(target error) bool { return target == ErrOverloaded }

// Options tunes a client. The zero value asks for defaults.
type Options struct {
	// Timeout is the per-request deadline forwarded to the server via
	// X-Timeout-Ms and enforced locally through the request context
	// (0 = 5s). Per-call contexts with earlier deadlines win.
	Timeout time.Duration
	// Binary switches search/approx/range/insert/delete to the binary
	// /v1/frame protocol (the JSON routes are the default).
	Binary bool
	// MaxIdleConns caps pooled keep-alive connections to the server
	// (0 = 32).
	MaxIdleConns int
	// HTTPClient overrides the transport entirely (tests, middleware);
	// when set, MaxIdleConns is ignored.
	HTTPClient *http.Client
}

// Client talks to one breserved server.
type Client struct {
	base    string
	hc      *http.Client
	timeout time.Duration
	binary  bool
}

// New creates a client for the server at baseURL (e.g.
// "http://127.0.0.1:7600"). opts may be the zero value.
func New(baseURL string, opts Options) *Client {
	if opts.Timeout <= 0 {
		opts.Timeout = 5 * time.Second
	}
	if opts.MaxIdleConns <= 0 {
		opts.MaxIdleConns = 32
	}
	hc := opts.HTTPClient
	if hc == nil {
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.MaxIdleConns = opts.MaxIdleConns
		tr.MaxIdleConnsPerHost = opts.MaxIdleConns
		hc = &http.Client{Transport: tr}
	}
	for len(baseURL) > 0 && baseURL[len(baseURL)-1] == '/' {
		baseURL = baseURL[:len(baseURL)-1]
	}
	return &Client{base: baseURL, hc: hc, timeout: opts.Timeout, binary: opts.Binary}
}

// Close releases pooled idle connections.
func (c *Client) Close() { c.hc.CloseIdleConnections() }

// do posts body to path and decodes the response envelope, mapping 429
// and 504 to their typed errors and other non-2xx statuses to the
// server's error message.
func (c *Client) do(ctx context.Context, path, contentType string, body []byte) ([]byte, error) {
	ctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", contentType)
	req.Header.Set("X-Timeout-Ms", strconv.FormatInt(c.timeout.Milliseconds(), 10))
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	// JSON inflates several-fold over the binary encoding, so the body
	// bound sits well above wire.MaxFrame; reaching it is an error, never
	// a silent truncation.
	const maxRespBody = 256 << 20
	out, err := io.ReadAll(io.LimitReader(resp.Body, maxRespBody+1))
	if err != nil {
		return nil, err
	}
	if len(out) > maxRespBody {
		return nil, fmt.Errorf("client: response body exceeds %d bytes", maxRespBody)
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return out, nil
	case http.StatusTooManyRequests:
		retry := time.Second
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			retry = time.Duration(secs) * time.Second
		}
		return nil, &OverloadedError{RetryAfter: retry}
	case http.StatusGatewayTimeout:
		return nil, ErrDeadline
	default:
		var er wire.ErrorResponse
		if json.Unmarshal(out, &er) == nil && er.Error != "" {
			return nil, fmt.Errorf("client: server: %s", er.Error)
		}
		// Binary routes answer errors as frames.
		if r, ferr := wire.ReadResponse(bytes.NewReader(out)); ferr == nil && r.Err != "" {
			return nil, fmt.Errorf("client: server: %s", r.Err)
		}
		return nil, fmt.Errorf("client: server returned status %d", resp.StatusCode)
	}
}

func (c *Client) postJSON(ctx context.Context, path string, reqBody, respBody any) error {
	raw, err := json.Marshal(reqBody)
	if err != nil {
		return err
	}
	out, err := c.do(ctx, path, "application/json", raw)
	if err != nil {
		return err
	}
	return json.Unmarshal(out, respBody)
}

func (c *Client) frame(ctx context.Context, req wire.Request) (wire.Response, error) {
	raw, err := wire.AppendRequest(nil, req)
	if err != nil {
		return wire.Response{}, err
	}
	out, err := c.do(ctx, "/v1/frame", "application/octet-stream", raw)
	if err != nil {
		return wire.Response{}, err
	}
	resp, err := wire.ReadResponse(bytes.NewReader(out))
	if err != nil {
		return wire.Response{}, err
	}
	if resp.Err != "" {
		return wire.Response{}, fmt.Errorf("client: server: %s", resp.Err)
	}
	return resp, nil
}

// Search returns the exact k nearest neighbours of q.
func (c *Client) Search(ctx context.Context, q []float64, k int) ([]wire.Item, error) {
	results, err := c.searchOp(ctx, wire.OpSearch, "/v1/search",
		wire.SearchRequest{Q: q, K: k},
		wire.Request{Op: wire.OpSearch, K: k, Queries: [][]float64{q}})
	if err != nil {
		return nil, err
	}
	return results[0].Items, nil
}

// BatchSearch submits all queries in one request; results arrive in
// query order, each the exact kNN answer.
func (c *Client) BatchSearch(ctx context.Context, queries [][]float64, k int) ([]wire.Result, error) {
	return c.searchOp(ctx, wire.OpSearch, "/v1/search",
		wire.SearchRequest{Queries: queries, K: k},
		wire.Request{Op: wire.OpSearch, K: k, Queries: queries})
}

// SearchApprox returns k neighbours that are the exact kNN with
// probability at least p ∈ (0,1].
func (c *Client) SearchApprox(ctx context.Context, q []float64, k int, p float64) ([]wire.Item, error) {
	results, err := c.searchOp(ctx, wire.OpApprox, "/v1/approx",
		wire.SearchRequest{Q: q, K: k, P: p},
		wire.Request{Op: wire.OpApprox, K: k, Param: p, Queries: [][]float64{q}})
	if err != nil {
		return nil, err
	}
	return results[0].Items, nil
}

// RangeSearch returns every point within distance r of q, ascending.
func (c *Client) RangeSearch(ctx context.Context, q []float64, r float64) ([]wire.Item, error) {
	results, err := c.searchOp(ctx, wire.OpRange, "/v1/range",
		wire.SearchRequest{Q: q, R: r},
		wire.Request{Op: wire.OpRange, Param: r, Queries: [][]float64{q}})
	if err != nil {
		return nil, err
	}
	return results[0].Items, nil
}

// searchOp routes one search-class call through the configured protocol.
func (c *Client) searchOp(ctx context.Context, op wire.Op, path string, jreq wire.SearchRequest, breq wire.Request) ([]wire.Result, error) {
	want := len(breq.Queries)
	var results []wire.Result
	if c.binary {
		resp, err := c.frame(ctx, breq)
		if err != nil {
			return nil, err
		}
		results = resp.Results
	} else {
		var sr wire.SearchResponse
		if err := c.postJSON(ctx, path, jreq, &sr); err != nil {
			return nil, err
		}
		results = sr.Results
	}
	if len(results) != want {
		return nil, fmt.Errorf("client: server answered %d results for %d queries", len(results), want)
	}
	return results, nil
}

// Insert durably adds a point and returns its global id.
func (c *Client) Insert(ctx context.Context, p []float64) (int, error) {
	if c.binary {
		resp, err := c.frame(ctx, wire.Request{Op: wire.OpInsert, Queries: [][]float64{p}})
		if err != nil {
			return 0, err
		}
		return int(resp.Value), nil
	}
	var ir wire.InsertResponse
	if err := c.postJSON(ctx, "/v1/insert", wire.InsertRequest{P: p}, &ir); err != nil {
		return 0, err
	}
	return ir.ID, nil
}

// Delete durably tombstones id, reporting whether it was live.
func (c *Client) Delete(ctx context.Context, id int) (bool, error) {
	if c.binary {
		resp, err := c.frame(ctx, wire.Request{Op: wire.OpDelete, ID: id})
		if err != nil {
			return false, err
		}
		return resp.Value == 1, nil
	}
	var dr wire.DeleteResponse
	if err := c.postJSON(ctx, "/v1/delete", wire.DeleteRequest{ID: id}, &dr); err != nil {
		return false, err
	}
	return dr.Deleted, nil
}

// Reload asks the server to checkpoint and hot-swap its snapshot,
// returning the post-swap admin view.
func (c *Client) Reload(ctx context.Context) (wire.AdminResponse, error) {
	var ar wire.AdminResponse
	err := c.postJSON(ctx, "/admin/reload", struct{}{}, &ar)
	return ar, err
}

// Checkpoint asks the server to fold its WAL into the snapshot.
func (c *Client) Checkpoint(ctx context.Context) (wire.AdminResponse, error) {
	var ar wire.AdminResponse
	err := c.postJSON(ctx, "/admin/checkpoint", struct{}{}, &ar)
	return ar, err
}

// Health fetches /healthz. A degraded server (non-200) returns the
// parsed Health alongside an error.
func (c *Client) Health(ctx context.Context) (wire.Health, error) {
	ctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return wire.Health{}, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return wire.Health{}, err
	}
	defer resp.Body.Close()
	var h wire.Health
	if derr := json.NewDecoder(resp.Body).Decode(&h); derr != nil {
		return wire.Health{}, derr
	}
	if resp.StatusCode != http.StatusOK {
		return h, fmt.Errorf("client: unhealthy (%d): %s", resp.StatusCode, h.Status)
	}
	return h, nil
}
