// Package client is the Go client for a breserved server: a thin,
// connection-reusing wrapper over net/http that speaks both the JSON
// routes and the length-prefixed binary protocol of internal/wire.
//
// One Client is safe for concurrent use and keeps a pooled transport, so
// concurrent requests multiplex over warm keep-alive connections instead
// of paying a dial + handshake each. BatchSearch submits many queries in
// one request — the server answers them through its batch engine — and
// single-query Search calls lean on the server-side coalescing window
// instead of client-side batching.
//
// Collection() scopes a client to one named collection on a
// multi-tenant server; the unscoped methods address the "default"
// collection over the pre-collections /v1 routes (and v1 binary
// frames), so either side may be upgraded first.
//
// Failures surface as typed errors across both protocols: load-shed
// (429) as ErrOverloaded with its Retry-After hint, per-collection
// quota sheds as wire.ErrQuota, deadlines (504) as ErrDeadline, and the
// collection vocabulary (wire.ErrNoSuchCollection,
// wire.ErrCollectionExists, wire.ErrBadFilter) is reconstructed from
// the machine-readable code the server attaches to JSON bodies and
// binary frames alike.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"brepartition/internal/wire"
)

// ErrOverloaded reports a 429 load-shed; errors.Is matches it and
// errors.As an *OverloadedError carrying the server's Retry-After hint.
var ErrOverloaded = errors.New("client: server overloaded")

// ErrDeadline reports a request that missed its deadline server-side
// (504).
var ErrDeadline = errors.New("client: request deadline exceeded")

// OverloadedError carries the Retry-After hint of a 429.
type OverloadedError struct {
	RetryAfter time.Duration
}

func (e *OverloadedError) Error() string {
	return fmt.Sprintf("client: server overloaded (retry after %v)", e.RetryAfter)
}

func (e *OverloadedError) Is(target error) bool { return target == ErrOverloaded }

// Options tunes a client. The zero value asks for defaults.
type Options struct {
	// Timeout is the per-request deadline forwarded to the server via
	// X-Timeout-Ms and enforced locally through the request context
	// (0 = 5s). Per-call contexts with earlier deadlines win.
	Timeout time.Duration
	// Binary switches search/approx/range/insert/delete to the binary
	// /v1/frame protocol (the JSON routes are the default).
	Binary bool
	// MaxIdleConns caps pooled keep-alive connections to the server
	// (0 = 32).
	MaxIdleConns int
	// HTTPClient overrides the transport entirely (tests, middleware);
	// when set, MaxIdleConns is ignored.
	HTTPClient *http.Client
}

// Client talks to one breserved server.
type Client struct {
	base    string
	hc      *http.Client
	timeout time.Duration
	binary  bool
}

// New creates a client for the server at baseURL (e.g.
// "http://127.0.0.1:7600"). opts may be the zero value.
func New(baseURL string, opts Options) *Client {
	if opts.Timeout <= 0 {
		opts.Timeout = 5 * time.Second
	}
	if opts.MaxIdleConns <= 0 {
		opts.MaxIdleConns = 32
	}
	hc := opts.HTTPClient
	if hc == nil {
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.MaxIdleConns = opts.MaxIdleConns
		tr.MaxIdleConnsPerHost = opts.MaxIdleConns
		hc = &http.Client{Transport: tr}
	}
	for len(baseURL) > 0 && baseURL[len(baseURL)-1] == '/' {
		baseURL = baseURL[:len(baseURL)-1]
	}
	return &Client{base: baseURL, hc: hc, timeout: opts.Timeout, binary: opts.Binary}
}

// Close releases pooled idle connections.
func (c *Client) Close() { c.hc.CloseIdleConnections() }

// sentinelErr rebuilds a typed error from the server's machine-readable
// code: the matching sentinel wraps the message so errors.Is works, and
// unknown codes degrade to a plain message.
func sentinelErr(codeName, msg string) error {
	if s := wire.ErrOf(wire.CodeByName(codeName)); s != nil {
		return fmt.Errorf("client: server: %s: %w", msg, s)
	}
	return fmt.Errorf("client: server: %s", msg)
}

// doReq issues one request and decodes the response envelope, mapping
// 429 and 504 to their typed errors and other non-2xx statuses to
// typed errors reconstructed from the body's error code.
func (c *Client) doReq(ctx context.Context, method, path, contentType string, body []byte) ([]byte, error) {
	ctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	req.Header.Set("X-Timeout-Ms", strconv.FormatInt(c.timeout.Milliseconds(), 10))
	if id := TraceIDFrom(ctx); id != 0 {
		req.Header.Set("X-Trace-Id", strconv.FormatUint(id, 16))
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	// JSON inflates several-fold over the binary encoding, so the body
	// bound sits well above wire.MaxFrame; reaching it is an error, never
	// a silent truncation.
	const maxRespBody = 256 << 20
	out, err := io.ReadAll(io.LimitReader(resp.Body, maxRespBody+1))
	if err != nil {
		return nil, err
	}
	if len(out) > maxRespBody {
		return nil, fmt.Errorf("client: response body exceeds %d bytes", maxRespBody)
	}
	codeName, msg := decodeErrBody(out)
	switch resp.StatusCode {
	case http.StatusOK, http.StatusCreated:
		return out, nil
	case http.StatusTooManyRequests:
		// Two shedders answer 429: the process gate (overloaded) and a
		// collection's quota. The code tells them apart.
		if codeName == wire.CodeQuota.String() {
			return nil, fmt.Errorf("client: server: %s: %w", msg, wire.ErrQuota)
		}
		retry := time.Second
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			retry = time.Duration(secs) * time.Second
		}
		return nil, &OverloadedError{RetryAfter: retry}
	case http.StatusGatewayTimeout:
		return nil, ErrDeadline
	default:
		if msg != "" {
			return nil, sentinelErr(codeName, msg)
		}
		return nil, fmt.Errorf("client: server returned status %d", resp.StatusCode)
	}
}

// decodeErrBody extracts the error code and message from either error
// encoding: the JSON ErrorResponse body or a binary error frame.
func decodeErrBody(out []byte) (codeName, msg string) {
	var er wire.ErrorResponse
	if json.Unmarshal(out, &er) == nil && er.Error != "" {
		return er.Code, er.Error
	}
	if r, ferr := wire.ReadResponse(bytes.NewReader(out)); ferr == nil && r.Err != "" {
		return r.Code.String(), r.Err
	}
	return "", ""
}

// do posts body to path (the historical verb-specific helper).
func (c *Client) do(ctx context.Context, path, contentType string, body []byte) ([]byte, error) {
	return c.doReq(ctx, http.MethodPost, path, contentType, body)
}

func (c *Client) postJSON(ctx context.Context, path string, reqBody, respBody any) error {
	raw, err := json.Marshal(reqBody)
	if err != nil {
		return err
	}
	out, err := c.do(ctx, path, "application/json", raw)
	if err != nil {
		return err
	}
	return json.Unmarshal(out, respBody)
}

func (c *Client) frame(ctx context.Context, req wire.Request) (wire.Response, error) {
	if req.TraceID == 0 {
		req.TraceID = TraceIDFrom(ctx)
	}
	raw, err := wire.AppendRequest(nil, req)
	if err != nil {
		return wire.Response{}, err
	}
	out, err := c.do(ctx, "/v1/frame", "application/octet-stream", raw)
	if err != nil {
		return wire.Response{}, err
	}
	resp, err := wire.ReadResponse(bytes.NewReader(out))
	if err != nil {
		return wire.Response{}, err
	}
	if resp.Err != "" {
		return wire.Response{}, sentinelErr(resp.Code.String(), resp.Err)
	}
	return resp, nil
}

// ---------------------------------------------------------------------------
// Collection scoping.
// ---------------------------------------------------------------------------

// Collection is a client view scoped to one named collection: the same
// operation set, addressed at /v2/collections/{name} (or carried in the
// binary frame's name field). The default collection routes over the
// pre-collections /v1 paths, so a scoped client still talks to servers
// that predate collections.
type Collection struct {
	c    *Client
	name string
}

// Collection scopes the client to the named collection. The view shares
// the client's transport; create as many as needed.
func (c *Client) Collection(name string) *Collection { return &Collection{c: c, name: name} }

// path maps an operation suffix ("search") to this collection's route.
func (col *Collection) path(op string) string {
	if col.name == wire.DefaultCollection {
		return "/v1/" + op
	}
	return "/v2/collections/" + url.PathEscape(col.name) + "/" + op
}

// Search returns the exact k nearest neighbours of q.
func (col *Collection) Search(ctx context.Context, q []float64, k int) ([]wire.Item, error) {
	results, err := col.searchOp(ctx, "search",
		wire.SearchRequest{Q: q, K: k},
		wire.Request{Op: wire.OpSearch, K: k, Queries: [][]float64{q}})
	if err != nil {
		return nil, err
	}
	return results[0].Items, nil
}

// SearchFiltered returns the exact k nearest neighbours of q among only
// the points matching the tag filter. Filtered search is JSON-only: the
// predicate vocabulary has no binary encoding yet, so a binary client
// falls back to the JSON route for this one call.
func (col *Collection) SearchFiltered(ctx context.Context, q []float64, k int, f wire.Filter) ([]wire.Item, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	var sr wire.SearchResponse
	if err := col.c.postJSON(ctx, col.path("search"), wire.SearchRequest{Q: q, K: k, Filter: &f}, &sr); err != nil {
		return nil, err
	}
	if len(sr.Results) != 1 {
		return nil, fmt.Errorf("client: server answered %d results for 1 query", len(sr.Results))
	}
	return sr.Results[0].Items, nil
}

// BatchSearch submits all queries in one request; results arrive in
// query order, each the exact kNN answer.
func (col *Collection) BatchSearch(ctx context.Context, queries [][]float64, k int) ([]wire.Result, error) {
	return col.searchOp(ctx, "search",
		wire.SearchRequest{Queries: queries, K: k},
		wire.Request{Op: wire.OpSearch, K: k, Queries: queries})
}

// SearchApprox returns k neighbours that are the exact kNN with
// probability at least p ∈ (0,1].
func (col *Collection) SearchApprox(ctx context.Context, q []float64, k int, p float64) ([]wire.Item, error) {
	results, err := col.searchOp(ctx, "approx",
		wire.SearchRequest{Q: q, K: k, P: p},
		wire.Request{Op: wire.OpApprox, K: k, Param: p, Queries: [][]float64{q}})
	if err != nil {
		return nil, err
	}
	return results[0].Items, nil
}

// RangeSearch returns every point within distance r of q, ascending.
func (col *Collection) RangeSearch(ctx context.Context, q []float64, r float64) ([]wire.Item, error) {
	results, err := col.searchOp(ctx, "range",
		wire.SearchRequest{Q: q, R: r},
		wire.Request{Op: wire.OpRange, Param: r, Queries: [][]float64{q}})
	if err != nil {
		return nil, err
	}
	return results[0].Items, nil
}

// searchOp routes one search-class call through the configured protocol.
func (col *Collection) searchOp(ctx context.Context, op string, jreq wire.SearchRequest, breq wire.Request) ([]wire.Result, error) {
	want := len(breq.Queries)
	var results []wire.Result
	if col.c.binary {
		breq.Collection = col.name
		resp, err := col.c.frame(ctx, breq)
		if err != nil {
			return nil, err
		}
		results = resp.Results
	} else {
		var sr wire.SearchResponse
		if err := col.c.postJSON(ctx, col.path(op), jreq, &sr); err != nil {
			return nil, err
		}
		results = sr.Results
	}
	if len(results) != want {
		return nil, fmt.Errorf("client: server answered %d results for %d queries", len(results), want)
	}
	return results, nil
}

// Insert durably adds a point and returns its global id.
func (col *Collection) Insert(ctx context.Context, p []float64) (int, error) {
	if col.c.binary {
		resp, err := col.c.frame(ctx, wire.Request{Op: wire.OpInsert, Collection: col.name, Queries: [][]float64{p}})
		if err != nil {
			return 0, err
		}
		return int(resp.Value), nil
	}
	var ir wire.InsertResponse
	if err := col.c.postJSON(ctx, col.path("insert"), wire.InsertRequest{P: p}, &ir); err != nil {
		return 0, err
	}
	return ir.ID, nil
}

// InsertTagged durably adds a point with metadata tags (the handles
// filtered search matches on) and returns its global id. Tagged inserts
// are JSON-only, like the filters that consume the tags.
func (col *Collection) InsertTagged(ctx context.Context, p []float64, tags []string) (int, error) {
	var ir wire.InsertResponse
	if err := col.c.postJSON(ctx, col.path("insert"), wire.InsertRequest{P: p, Tags: tags}, &ir); err != nil {
		return 0, err
	}
	return ir.ID, nil
}

// Delete durably tombstones id, reporting whether it was live.
func (col *Collection) Delete(ctx context.Context, id int) (bool, error) {
	if col.c.binary {
		resp, err := col.c.frame(ctx, wire.Request{Op: wire.OpDelete, Collection: col.name, ID: id})
		if err != nil {
			return false, err
		}
		return resp.Value == 1, nil
	}
	var dr wire.DeleteResponse
	if err := col.c.postJSON(ctx, col.path("delete"), wire.DeleteRequest{ID: id}, &dr); err != nil {
		return false, err
	}
	return dr.Deleted, nil
}

// ---------------------------------------------------------------------------
// Default-collection convenience surface (the pre-collections API).
// ---------------------------------------------------------------------------

func (c *Client) def() *Collection { return c.Collection(wire.DefaultCollection) }

// Search returns the exact k nearest neighbours of q.
func (c *Client) Search(ctx context.Context, q []float64, k int) ([]wire.Item, error) {
	return c.def().Search(ctx, q, k)
}

// BatchSearch submits all queries in one request; results arrive in
// query order, each the exact kNN answer.
func (c *Client) BatchSearch(ctx context.Context, queries [][]float64, k int) ([]wire.Result, error) {
	return c.def().BatchSearch(ctx, queries, k)
}

// SearchApprox returns k neighbours that are the exact kNN with
// probability at least p ∈ (0,1].
func (c *Client) SearchApprox(ctx context.Context, q []float64, k int, p float64) ([]wire.Item, error) {
	return c.def().SearchApprox(ctx, q, k, p)
}

// RangeSearch returns every point within distance r of q, ascending.
func (c *Client) RangeSearch(ctx context.Context, q []float64, r float64) ([]wire.Item, error) {
	return c.def().RangeSearch(ctx, q, r)
}

// Insert durably adds a point and returns its global id.
func (c *Client) Insert(ctx context.Context, p []float64) (int, error) {
	return c.def().Insert(ctx, p)
}

// Delete durably tombstones id, reporting whether it was live.
func (c *Client) Delete(ctx context.Context, id int) (bool, error) {
	return c.def().Delete(ctx, id)
}

// ---------------------------------------------------------------------------
// Collection management.
// ---------------------------------------------------------------------------

// Collections lists every collection the server hosts, name-sorted.
func (c *Client) Collections(ctx context.Context) ([]wire.CollectionInfo, error) {
	out, err := c.doReq(ctx, http.MethodGet, "/v2/collections", "", nil)
	if err != nil {
		return nil, err
	}
	var resp wire.CollectionsResponse
	if err := json.Unmarshal(out, &resp); err != nil {
		return nil, err
	}
	return resp.Collections, nil
}

// CollectionInfo fetches one collection's spec and state.
func (c *Client) CollectionInfo(ctx context.Context, name string) (wire.CollectionInfo, error) {
	out, err := c.doReq(ctx, http.MethodGet, "/v2/collections/"+url.PathEscape(name), "", nil)
	if err != nil {
		return wire.CollectionInfo{}, err
	}
	var info wire.CollectionInfo
	err = json.Unmarshal(out, &info)
	return info, err
}

// CreateCollection creates a named collection from spec. A name
// collision answers wire.ErrCollectionExists; a bad spec,
// wire.ErrBadCollection.
func (c *Client) CreateCollection(ctx context.Context, name string, spec wire.CollectionSpec) (wire.CollectionInfo, error) {
	raw, err := json.Marshal(spec)
	if err != nil {
		return wire.CollectionInfo{}, err
	}
	out, err := c.doReq(ctx, http.MethodPut, "/v2/collections/"+url.PathEscape(name), "application/json", raw)
	if err != nil {
		return wire.CollectionInfo{}, err
	}
	var info wire.CollectionInfo
	err = json.Unmarshal(out, &info)
	return info, err
}

// DropCollection removes a named collection and its files.
func (c *Client) DropCollection(ctx context.Context, name string) error {
	_, err := c.doReq(ctx, http.MethodDelete, "/v2/collections/"+url.PathEscape(name), "", nil)
	return err
}

// ---------------------------------------------------------------------------
// Admin.
// ---------------------------------------------------------------------------

// adminPath scopes an admin route to a collection ("" = unscoped:
// single-collection servers answer for their one index, multi-collection
// servers sweep).
func adminPath(op, collection string) string {
	if collection == "" {
		return "/admin/" + op
	}
	return "/admin/" + op + "?collection=" + url.QueryEscape(collection)
}

// Reload asks the server to checkpoint and hot-swap its snapshot,
// returning the post-swap admin view.
func (c *Client) Reload(ctx context.Context) (wire.AdminResponse, error) {
	var ar wire.AdminResponse
	err := c.postJSON(ctx, adminPath("reload", ""), struct{}{}, &ar)
	return ar, err
}

// Checkpoint asks the server to fold its WAL into the snapshot.
func (c *Client) Checkpoint(ctx context.Context) (wire.AdminResponse, error) {
	var ar wire.AdminResponse
	err := c.postJSON(ctx, adminPath("checkpoint", ""), struct{}{}, &ar)
	return ar, err
}

// ReloadCollection hot-swaps one collection's snapshot.
func (c *Client) ReloadCollection(ctx context.Context, name string) (wire.AdminResponse, error) {
	var ar wire.AdminResponse
	err := c.postJSON(ctx, adminPath("reload", name), struct{}{}, &ar)
	return ar, err
}

// CheckpointCollection folds one collection's WAL into its snapshot.
func (c *Client) CheckpointCollection(ctx context.Context, name string) (wire.AdminResponse, error) {
	var ar wire.AdminResponse
	err := c.postJSON(ctx, adminPath("checkpoint", name), struct{}{}, &ar)
	return ar, err
}

// ReloadAll sweeps a hot snapshot reload across every collection,
// reporting each outcome (a failed collection never strands the rest).
func (c *Client) ReloadAll(ctx context.Context) (wire.AdminSweepResponse, error) {
	var sr wire.AdminSweepResponse
	err := c.postJSON(ctx, adminPath("reload", ""), struct{}{}, &sr)
	return sr, err
}

// CheckpointAll sweeps a checkpoint across every collection.
func (c *Client) CheckpointAll(ctx context.Context) (wire.AdminSweepResponse, error) {
	var sr wire.AdminSweepResponse
	err := c.postJSON(ctx, adminPath("checkpoint", ""), struct{}{}, &sr)
	return sr, err
}

// Health fetches the server's /healthz view. A degraded server
// (non-200) returns the parsed Health alongside an error.
func (c *Client) Health(ctx context.Context) (wire.Health, error) {
	ctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return wire.Health{}, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return wire.Health{}, err
	}
	defer resp.Body.Close()
	var h wire.Health
	if derr := json.NewDecoder(resp.Body).Decode(&h); derr != nil {
		return wire.Health{}, derr
	}
	if resp.StatusCode != http.StatusOK {
		return h, fmt.Errorf("client: unhealthy (%d): %s", resp.StatusCode, h.Status)
	}
	return h, nil
}
