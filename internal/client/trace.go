package client

// Client-side trace correlation: WithTraceID attaches a caller-chosen
// nonzero trace id to a context, and every request issued under that
// context carries it — as the X-Trace-Id header on the JSON routes and
// as the binary frame's trace field on /v1/frame. The server forces a
// trace for such requests and echoes the id back (response header /
// frame field), so one id links the client call site, the server's
// stage histograms, and any slow-query log line the request produced.

import "context"

// traceIDKey is the context key for the outgoing trace id.
type traceIDKey struct{}

// WithTraceID returns ctx carrying id on every request issued under it.
// id 0 removes nothing and sends nothing (the zero id means untraced).
func WithTraceID(ctx context.Context, id uint64) context.Context {
	if id == 0 {
		return ctx
	}
	return context.WithValue(ctx, traceIDKey{}, id)
}

// TraceIDFrom extracts the trace id WithTraceID stored, or 0.
func TraceIDFrom(ctx context.Context) uint64 {
	if ctx == nil {
		return 0
	}
	id, _ := ctx.Value(traceIDKey{}).(uint64)
	return id
}
