package client

import (
	"context"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"brepartition/internal/bregman"
	"brepartition/internal/core"
	"brepartition/internal/server"
	"brepartition/internal/shard"
	"brepartition/internal/wire"
)

func testPoints(n, d int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, d)
		base := 1.0 + 2*float64(i%5)
		for j := range p {
			p[j] = base + rng.Float64()
		}
		pts[i] = p
	}
	return pts
}

func fixture(t *testing.T, cfg server.Config) (*httptest.Server, *core.Index, [][]float64) {
	t.Helper()
	root := filepath.Join(t.TempDir(), "durable")
	pts := testPoints(280, 9, 5)
	opts := shard.DurableOptions{Shards: 3, Core: core.Options{M: 3, Seed: 2}, CheckpointBytes: -1}
	d, err := shard.BuildDurable(bregman.ItakuraSaito{}, pts, root, opts)
	if err != nil {
		t.Fatal(err)
	}
	h := shard.NewHandle(d)
	oracle, err := core.Build(bregman.ItakuraSaito{}, pts, core.Options{M: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(h, func() (*shard.Durable, error) { return shard.OpenDurable(root, opts) }, cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close(); h.Close() })
	return ts, oracle, pts
}

func wantItems(t *testing.T, oracle *core.Index, q []float64, k int) []wire.Item {
	t.Helper()
	res, err := oracle.Search(q, k)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]wire.Item, len(res.Items))
	for i, it := range res.Items {
		out[i] = wire.Item{ID: it.ID, Distance: it.Score}
	}
	return out
}

// TestClientBothProtocolsOracle drives the full client surface over JSON
// and binary and pins the answers to the in-process oracle.
func TestClientBothProtocolsOracle(t *testing.T) {
	ts, oracle, pts := fixture(t, server.Config{})
	queries := testPoints(6, 9, 33)
	ctx := context.Background()
	const k = 5

	for _, binary := range []bool{false, true} {
		c := New(ts.URL, Options{Binary: binary})
		defer c.Close()

		for _, q := range queries {
			got, err := c.Search(ctx, q, k)
			if err != nil {
				t.Fatalf("binary=%v: %v", binary, err)
			}
			if want := wantItems(t, oracle, q, k); !reflect.DeepEqual(got, want) {
				t.Fatalf("binary=%v: search drifted\ngot  %+v\nwant %+v", binary, got, want)
			}
		}

		batch, err := c.BatchSearch(ctx, queries, k)
		if err != nil {
			t.Fatalf("binary=%v: %v", binary, err)
		}
		if len(batch) != len(queries) {
			t.Fatalf("binary=%v: %d batch results", binary, len(batch))
		}
		for i, q := range queries {
			if want := wantItems(t, oracle, q, k); !reflect.DeepEqual(batch[i].Items, want) {
				t.Fatalf("binary=%v: batch query %d drifted", binary, i)
			}
		}

		if got, err := c.SearchApprox(ctx, queries[0], k, 1); err != nil {
			t.Fatalf("binary=%v: %v", binary, err)
		} else if want := wantItems(t, oracle, queries[0], k); !reflect.DeepEqual(got, want) {
			t.Fatalf("binary=%v: approx p=1 drifted", binary)
		}

		ritems, _, err := oracle.RangeSearch(queries[0], 2.0)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.RangeSearch(ctx, queries[0], 2.0)
		if err != nil {
			t.Fatalf("binary=%v: %v", binary, err)
		}
		if len(got) != len(ritems) {
			t.Fatalf("binary=%v: range %d items, want %d", binary, len(got), len(ritems))
		}

		// Bad input surfaces the server's message, not a silent empty.
		if _, err := c.Search(ctx, queries[0][:2], k); err == nil {
			t.Fatalf("binary=%v: bad-dim search succeeded", binary)
		}
	}

	// Mutations (JSON client) round-trip with health and admin.
	c := New(ts.URL, Options{})
	defer c.Close()
	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.N != len(pts) || h.Dim != 9 {
		t.Fatalf("health: %+v", h)
	}
	id, err := c.Insert(ctx, pts[0])
	if err != nil {
		t.Fatal(err)
	}
	if id != len(pts) {
		t.Fatalf("insert id = %d, want %d", id, len(pts))
	}
	deleted, err := c.Delete(ctx, id)
	if err != nil || !deleted {
		t.Fatalf("delete: %v %v", deleted, err)
	}
	if ar, err := c.Checkpoint(ctx); err != nil || ar.Version != uint64(2) {
		t.Fatalf("checkpoint: %+v %v", ar, err)
	}
	if ar, err := c.Reload(ctx); err != nil || ar.Version != uint64(2) {
		t.Fatalf("reload: %+v %v", ar, err)
	}
	// Post-reload searches still match.
	if got, err := c.Search(ctx, queries[0], k); err != nil {
		t.Fatal(err)
	} else if want := wantItems(t, oracle, queries[0], k); !reflect.DeepEqual(got, want) {
		t.Fatal("post-reload search drifted")
	}

	// Binary mutations too.
	cb := New(ts.URL, Options{Binary: true})
	defer cb.Close()
	id2, err := cb.Insert(ctx, pts[1])
	if err != nil {
		t.Fatal(err)
	}
	if deleted, err := cb.Delete(ctx, id2); err != nil || !deleted {
		t.Fatalf("binary delete: %v %v", deleted, err)
	}
}

// TestClientOverloadTyped pins the 429 contract: ErrOverloaded matches,
// and the Retry-After hint is carried.
func TestClientOverloadTyped(t *testing.T) {
	// A stub that always sheds keeps this deterministic.
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "3")
		w.WriteHeader(http.StatusTooManyRequests)
		w.Write([]byte(`{"error":"overloaded"}`))
	}))
	defer stub.Close()
	c := New(stub.URL, Options{})
	defer c.Close()
	_, err := c.Search(context.Background(), []float64{1}, 1)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	var oe *OverloadedError
	if !errors.As(err, &oe) || oe.RetryAfter != 3*time.Second {
		t.Fatalf("RetryAfter hint lost: %v", err)
	}
}

// TestClientDeadlineTyped pins the 504 mapping.
func TestClientDeadlineTyped(t *testing.T) {
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusGatewayTimeout)
		w.Write([]byte(`{"error":"deadline"}`))
	}))
	defer stub.Close()
	c := New(stub.URL, Options{})
	defer c.Close()
	if _, err := c.Search(context.Background(), []float64{1}, 1); !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
}
