package kernel

import (
	"math"
	"testing"

	"brepartition/internal/bregman"
)

// domainEdgeValues returns coordinates that probe a divergence's numeric
// edges: tiny/huge magnitudes and values hugging the domain boundary. For
// positive-domain generators that is (0, ∞) approached from above; for
// full-line generators the exp-overflow band ±700 is avoided just enough
// to keep the scalar reference finite (overflow behaviour is fuzzed
// separately, where both paths may return Inf together).
func domainEdgeValues(div bregman.Divergence) []float64 {
	lo, _ := div.Domain()
	if lo == 0 {
		return []float64{
			1e-300, 1e-12, 1e-3, 0.5, 1, 2, 1e3, 1e12, 1e300,
			math.Nextafter(0, 1) * 1e10, 1 + 1e-15,
		}
	}
	return []float64{
		-700, -30, -1, -1e-12, 0, 1e-12, 1, 30, 700,
		math.Nextafter(1, 2), -math.Pi,
	}
}

// ulpClose reports |a−b| within a few ULPs of the computation's working
// magnitude. scale is the largest intermediate term that entered the sums
// (for L2, Σx²+Σy²): the scalar three-term expansion loses exactly those
// ULPs to cancellation, so the fused form may differ — in either direction
// — by rounding at that magnitude, never more.
func ulpClose(a, b, scale float64) bool {
	if a == b {
		return true
	}
	if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
		return (math.IsNaN(a) && math.IsNaN(b)) ||
			(math.IsInf(a, 1) && math.IsInf(b, 1)) ||
			(math.IsInf(a, -1) && math.IsInf(b, -1))
	}
	tol := 1e-12 * math.Max(1, math.Max(scale, math.Max(math.Abs(a), math.Abs(b))))
	return math.Abs(a-b) <= tol
}

// sumSquares is the L2 cancellation magnitude of a pair of vectors.
func sumSquares(x, y []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	for _, v := range y {
		s += v * v
	}
	return s
}

// TestKernelMatchesScalarOracle pins the numerical contract: for every
// registered divergence, kernel.Distance and kernel.DistancesTo agree with
// bregman.Distance over domain-edge coordinate combinations — bit for bit
// for every kernel except L2, whose fused closed form is held to a ≤1e-12
// relative (documented-ULP) tolerance.
func TestKernelMatchesScalarOracle(t *testing.T) {
	for _, div := range bregman.All() {
		kern := For(div)
		vals := domainEdgeValues(div)
		exact := kern.Name() != "l2" // fused L2 is ULP-compatible only

		var points [][]float64
		for _, a := range vals {
			for _, b := range vals {
				points = append(points, []float64{a, b})
			}
		}
		block := Flatten(points)
		out := make([]float64, block.N)

		for _, q := range points {
			kern.DistancesTo(q, block, out)
			for i, x := range points {
				want := bregman.Distance(div, x, q)
				got := kern.Distance(x, q)
				if got != out[i] && !(math.IsNaN(got) && math.IsNaN(out[i])) {
					t.Fatalf("%s: Distance(%v,%v)=%v but DistancesTo gave %v",
						kern.Name(), x, q, got, out[i])
				}
				if exact {
					if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
						t.Fatalf("%s: kernel %v != scalar %v for x=%v q=%v (want bit equality)",
							kern.Name(), got, want, x, q)
					}
				} else if !ulpClose(got, want, sumSquares(x, q)) {
					t.Fatalf("%s: kernel %v vs scalar %v beyond ULP tolerance for x=%v q=%v",
						kern.Name(), got, want, x, q)
				}
			}
		}
	}
}

// TestKernelGradVecsMatchScalar pins GradVec/GradInvVec against the
// bregman helpers, bit for bit for every kernel (the gradient math is
// identical in all of them, fused L2 included).
func TestKernelGradVecsMatchScalar(t *testing.T) {
	for _, div := range bregman.All() {
		kern := For(div)
		y := domainEdgeValues(div)
		got := make([]float64, len(y))
		want := make([]float64, len(y))

		kern.GradVec(got, y)
		bregman.GradVec(div, want, y)
		for j := range y {
			if got[j] != want[j] && !(math.IsNaN(got[j]) && math.IsNaN(want[j])) {
				t.Fatalf("%s: GradVec[%d] = %v, scalar %v (y=%v)", kern.Name(), j, got[j], want[j], y[j])
			}
		}

		kern.GradInvVec(got, want) // want currently holds ∇f(y)
		bregman.GradInvVec(div, want, want)
		for j := range y {
			if got[j] != want[j] && !(math.IsNaN(got[j]) && math.IsNaN(want[j])) {
				t.Fatalf("%s: GradInvVec[%d] = %v, scalar %v", kern.Name(), j, got[j], want[j])
			}
		}
	}
}

// TestKernelGeodesicStepMatchesScalar replays the BB-tree bound bisection's
// inner step and checks the fused kernels against the reference sequence
// (interpolate in gradient space, invert, measure both divergences) that
// the generic fallback still executes literally.
func TestKernelGeodesicStepMatchesScalar(t *testing.T) {
	for _, div := range bregman.All() {
		kern := For(div)
		gen := Generic(div)
		exact := kern.Name() != "l2"

		var vals []float64
		lo, _ := div.Domain()
		if lo == 0 {
			vals = []float64{1e-3, 0.25, 1, 3, 1e2}
		} else {
			vals = []float64{-3, -0.5, 0, 1, 2.5}
		}
		d := len(vals)
		q := make([]float64, d)
		mu := make([]float64, d)
		for j := range q {
			q[j] = vals[j]
			mu[j] = vals[(j+2)%d]
		}
		gq := make([]float64, d)
		gmu := make([]float64, d)
		kern.GradVec(gq, q)
		kern.GradVec(gmu, mu)
		scratch := make([]float64, d)

		for _, theta := range []float64{0.015625, 0.25, 0.5, 0.75, 0.984375} {
			dQ, dMu, ok := kern.GeodesicStep(gq, gmu, q, mu, theta, scratch)
			wQ, wMu, wok := gen.GeodesicStep(gq, gmu, q, mu, theta, scratch)
			if ok != wok {
				t.Fatalf("%s θ=%v: ok=%v, generic ok=%v", kern.Name(), theta, ok, wok)
			}
			if !ok {
				continue
			}
			if exact {
				if dQ != wQ || dMu != wMu {
					t.Fatalf("%s θ=%v: fused (%v,%v) != scalar (%v,%v)",
						kern.Name(), theta, dQ, dMu, wQ, wMu)
				}
			} else if !ulpClose(dQ, wQ, sumSquares(q, mu)) || !ulpClose(dMu, wMu, sumSquares(q, mu)) {
				t.Fatalf("%s θ=%v: fused (%v,%v) vs scalar (%v,%v) beyond tolerance",
					kern.Name(), theta, dQ, dMu, wQ, wMu)
			}
		}
	}
}

// TestFlatBlockViews pins Row/Slice/Flatten geometry.
func TestFlatBlockViews(t *testing.T) {
	pts := [][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}, {10, 11, 12}}
	b := Flatten(pts)
	if b.N != 4 || b.Dim != 3 || len(b.Data) != 12 {
		t.Fatalf("Flatten geometry: N=%d Dim=%d len=%d", b.N, b.Dim, len(b.Data))
	}
	for i, p := range pts {
		row := b.Row(i)
		for j := range p {
			if row[j] != p[j] {
				t.Fatalf("Row(%d)[%d] = %v, want %v", i, j, row[j], p[j])
			}
		}
		if cap(row) != b.Dim {
			t.Fatalf("Row(%d) capacity %d leaks into the next row", i, cap(row))
		}
	}
	sub := b.Slice(1, 3)
	if sub.N != 2 || sub.Row(0)[0] != 4 || sub.Row(1)[2] != 9 {
		t.Fatalf("Slice(1,3) wrong rows: %+v", sub)
	}
	if Flatten(nil).N != 0 {
		t.Fatal("Flatten(nil) should be empty")
	}
}

// TestForPicksConcreteKernels pins the registry dispatch: every built-in
// divergence gets its monomorphized kernel, everything else the generic
// fallback.
func TestForPicksConcreteKernels(t *testing.T) {
	for _, div := range bregman.All() {
		kern := For(div)
		if kern.Name() != div.Name() {
			t.Fatalf("For(%s).Name() = %s", div.Name(), kern.Name())
		}
		if kern.Divergence().Name() != div.Name() {
			t.Fatalf("For(%s).Divergence() mismatch", div.Name())
		}
		_, generic := kern.(genericKernel)
		if lp, isLp := div.(bregman.LpNorm); isLp {
			if !generic {
				t.Fatalf("LpNorm(%v) should fall back to the generic kernel", lp.P)
			}
		} else if generic {
			t.Fatalf("%s should have a monomorphized kernel", div.Name())
		}
	}
}

// TestKernelDimensionMismatchPanics pins Distance's panic contract (same
// as bregman.Distance).
func TestKernelDimensionMismatchPanics(t *testing.T) {
	for _, div := range bregman.All() {
		kern := For(div)
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic on dimension mismatch", kern.Name())
				}
			}()
			kern.Distance([]float64{1, 2}, []float64{1})
		}()
	}
}
