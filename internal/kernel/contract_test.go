package kernel

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"brepartition/internal/bregman"
)

// mustPanic runs fn and asserts it panics with a message containing want.
func mustPanic(t *testing.T, name, want string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("%s: no panic, want %q", name, want)
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, want) {
			t.Fatalf("%s: panicked with %v, want message containing %q", name, r, want)
		}
	}()
	fn()
}

func contractBlock(div bregman.Divergence, n, d int) ([]float64, FlatBlock) {
	rng := rand.New(rand.NewSource(17))
	lo, _ := div.Domain()
	gen := func() float64 {
		if lo == 0 {
			return 0.1 + rng.Float64()
		}
		return rng.NormFloat64()
	}
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, d)
		for j := range p {
			p[j] = gen()
		}
		pts[i] = p
	}
	q := make([]float64, d)
	for j := range q {
		q[j] = gen()
	}
	return q, Flatten(pts)
}

// TestDistancesToContract pins the argument contract for every kernel,
// generic fallback included: dimension mismatch, short out, truncated
// block data, and an out that aliases the block or the query all panic
// with a diagnostic message; an out longer than block.N is legal and only
// out[:N] is written.
func TestDistancesToContract(t *testing.T) {
	divs := append(bregman.All(), bregman.LpNorm{P: 4})
	for _, div := range divs {
		kern := For(div)
		q, block := contractBlock(div, 8, 5)
		out := make([]float64, block.N)

		mustPanic(t, kern.Name()+"/dim", "query length does not match block.Dim", func() {
			kern.DistancesTo(q[:4], block, out)
		})
		mustPanic(t, kern.Name()+"/short-out", "out shorter than block.N", func() {
			kern.DistancesTo(q, block, out[:block.N-1])
		})
		mustPanic(t, kern.Name()+"/short-data", "block data shorter than N*Dim", func() {
			short := block
			short.Data = short.Data[:len(short.Data)-1]
			kern.DistancesTo(q, short, out)
		})
		mustPanic(t, kern.Name()+"/alias-block", "out aliases block or query memory", func() {
			kern.DistancesTo(q, block, block.Data[:block.N])
		})
		mustPanic(t, kern.Name()+"/alias-query", "out aliases block or query memory", func() {
			qs := make([]float64, block.Dim+block.N)
			copy(qs, q)
			// out starts at the query's last element: a one-cell overlap.
			kern.DistancesTo(qs[:block.Dim], block, qs[block.Dim-1:block.Dim-1+block.N])
		})

		// Oversized out: only out[:N] may be written.
		long := make([]float64, block.N+3)
		const sentinel = -12345.5
		for i := block.N; i < len(long); i++ {
			long[i] = sentinel
		}
		kern.DistancesTo(q, block, long)
		for i := block.N; i < len(long); i++ {
			if long[i] != sentinel {
				t.Fatalf("%s: DistancesTo wrote past out[:N] at %d", kern.Name(), i)
			}
		}
		for i := 0; i < block.N; i++ {
			if want := kern.Distance(block.Row(i), q); long[i] != want && !(math.IsNaN(long[i]) && math.IsNaN(want)) {
				t.Fatalf("%s: oversized-out row %d = %v, want %v", kern.Name(), i, long[i], want)
			}
		}
	}
}

// TestGradVecContract pins the gradient panic contract for a short dst.
func TestGradVecContract(t *testing.T) {
	for _, div := range bregman.All() {
		kern := For(div)
		src := []float64{0.5, 1.5, 2.5}
		mustPanic(t, kern.Name()+"/grad", "gradient dst shorter than input", func() {
			kern.GradVec(make([]float64, 2), src)
		})
		mustPanic(t, kern.Name()+"/gradinv", "gradient dst shorter than input", func() {
			kern.GradInvVec(make([]float64, 2), src)
		})
	}
}

// TestDistancePrepContract pins the hoisted-prep path: PrepQuery +
// DistancePrep must reproduce Distance bit for bit (the prep only stores
// values the plain path recomputes from the same inputs), and short
// scratch or mismatched dimensions panic.
func TestDistancePrepContract(t *testing.T) {
	divs := append(bregman.All(), bregman.LpNorm{P: 4})
	for _, div := range divs {
		kern := For(div)
		q, block := contractBlock(div, 8, 5)
		scratch := make([]float64, kern.QueryScratchLen(len(q)))
		kern.PrepQuery(scratch, q)
		for i := 0; i < block.N; i++ {
			x := block.Row(i)
			got := kern.DistancePrep(x, q, scratch)
			want := kern.Distance(x, q)
			if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
				t.Fatalf("%s: DistancePrep %v != Distance %v (row %d)", kern.Name(), got, want, i)
			}
		}
		if n := kern.QueryScratchLen(len(q)); n > 0 {
			mustPanic(t, kern.Name()+"/short-scratch", "scratch shorter than QueryScratchLen", func() {
				kern.DistancePrep(block.Row(0), q, scratch[:n-1])
			})
		}
		mustPanic(t, kern.Name()+"/prep-dim", "dimension mismatch", func() {
			kern.DistancePrep(block.Row(0)[:4], q, scratch)
		})
	}
}

// TestDistancesToZeroAlloc pins that the hoisted block path allocates
// nothing: the per-query prep lives on the stack. Unlike the pooled search
// test this involves no sync.Pool, so it holds under the race detector too.
func TestDistancesToZeroAlloc(t *testing.T) {
	for _, div := range bregman.All() {
		kern := For(div)
		q, block := contractBlock(div, 64, 24)
		out := make([]float64, block.N)
		allocs := testing.AllocsPerRun(100, func() {
			kern.DistancesTo(q, block, out)
		})
		if allocs != 0 {
			t.Fatalf("%s: DistancesTo allocates %.1f per op, want 0", kern.Name(), allocs)
		}
	}
}
