// Package kernel provides monomorphized Bregman-divergence distance kernels
// over flat, row-major point storage. It is the hot inner layer of the
// search path: every distance the system evaluates in bulk — BB-tree leaf
// scans, node-bound geodesic projections, candidate refinement, brute-force
// ground truth — goes through a concrete (non-interface) kernel chosen once
// per index or per query, instead of paying two virtual calls (Phi, Grad)
// per coordinate per point through the bregman.Divergence interface.
//
// Numerical contract: every kernel reproduces bregman.Distance's arithmetic
// bit for bit — the same per-coordinate expression φ(x)−φ(y)−φ′(y)(x−y)
// with inlined generator math, summed left to right and clamped at 0 — with
// one documented exception: the squared-Euclidean kernel uses the fused
// closed form Σ(x−y)², which differs from the scalar three-term expansion
// by rounding (≈1 ULP on benign data). All search paths route through the
// same kernel, so results stay internally consistent; the property tests in
// kernel_test.go pin bit equality for every other divergence and a tight
// relative tolerance for L2.
package kernel

import (
	"math"

	"brepartition/internal/bregman"
	"brepartition/internal/vecmath"
)

// FlatBlock is a contiguous row-major block of N points with Dim
// coordinates each: point i occupies Data[i*Dim : (i+1)*Dim]. It is the
// storage format of the disk store's page arena and the BB-tree's subspace
// arena, and the unit the batched kernels stream over.
type FlatBlock struct {
	Data []float64
	Dim  int
	N    int
}

// Row returns point i's coordinates as a full-capacity-clamped view into
// the block (appends can never bleed into the next row).
func (b FlatBlock) Row(i int) []float64 {
	off := i * b.Dim
	return b.Data[off : off+b.Dim : off+b.Dim]
}

// Slice returns the sub-block of rows [lo, hi).
func (b FlatBlock) Slice(lo, hi int) FlatBlock {
	return FlatBlock{Data: b.Data[lo*b.Dim : hi*b.Dim], Dim: b.Dim, N: hi - lo}
}

// Flatten copies points into a fresh row-major block. All rows must share
// one dimensionality; Flatten panics otherwise (a programming error on the
// construction path).
func Flatten(points [][]float64) FlatBlock {
	if len(points) == 0 {
		return FlatBlock{}
	}
	dim := len(points[0])
	data := make([]float64, len(points)*dim)
	for i, p := range points {
		if len(p) != dim {
			panic("kernel: ragged point set")
		}
		copy(data[i*dim:], p)
	}
	return FlatBlock{Data: data, Dim: dim, N: len(points)}
}

// Kernel is one divergence's batched evaluation surface. Implementations
// are concrete structs so every method body is a tight scalar loop the
// compiler can unroll and bounds-check-eliminate; the interface is crossed
// once per block or per vector, never per coordinate.
//
// All methods follow bregman's conventions: Distance computes D_f(x, y)
// (first argument is the data point), no domain checking is performed
// (callers validate at the API boundary), and negative roundoff is clamped
// to 0 exactly as bregman.Distance does.
type Kernel interface {
	// Name returns the underlying divergence's registry name.
	Name() string
	// Divergence returns the divergence this kernel evaluates.
	Divergence() bregman.Divergence

	// Distance computes D_f(x, y). It panics on a length mismatch, like
	// bregman.Distance.
	Distance(x, y []float64) float64

	// DistancesTo evaluates the query against a block in one pass:
	// out[i] = D_f(block.Row(i), q) for i < block.N. len(out) must be at
	// least block.N and q's length must equal block.Dim.
	DistancesTo(q []float64, block FlatBlock, out []float64)

	// GradVec writes ∇f(y) into dst element-wise (dst must be pre-sized).
	GradVec(dst, y []float64)

	// GradInvVec writes (∇f)⁻¹(g) into dst element-wise.
	GradInvVec(dst, g []float64)

	// GeodesicStep evaluates the dual-space geodesic point
	// x(θ) = (∇f)⁻¹((1−θ)·gq + θ·gmu) and returns its divergences to the
	// query and the ball center, dQ = D_f(x(θ), q) and dMu = D_f(x(θ), mu),
	// without materializing x(θ) (concrete kernels keep it in registers).
	// ok is false when x(θ) is not finite, in which case the caller must
	// abandon the bound (matching bbtree's finiteVec guard). scratch, when
	// the implementation needs it (the generic fallback), must have
	// len ≥ len(q); concrete kernels ignore it.
	GeodesicStep(gq, gmu, q, mu []float64, theta float64, scratch []float64) (dQ, dMu float64, ok bool)
}

// For returns the monomorphized kernel for div when one is registered
// (squared Euclidean, Mahalanobis, Itakura–Saito, exponential, generalized
// KL, Shannon entropy, Burg entropy), and the generic interface-dispatching
// fallback otherwise. The choice is made once; hot loops never re-dispatch.
func For(div bregman.Divergence) Kernel {
	switch d := div.(type) {
	case bregman.SquaredEuclidean:
		return l2Kernel{}
	case bregman.Mahalanobis:
		return mahalanobisKernel{w: d.W}
	case bregman.ItakuraSaito:
		return isKernel{}
	case bregman.Exponential:
		return expKernel{}
	case bregman.GeneralizedKL:
		return gklKernel{}
	case bregman.ShannonEntropy:
		return shannonKernel{}
	case bregman.BurgEntropy:
		return burgKernel{}
	default:
		return Generic(div)
	}
}

// Generic wraps any bregman.Divergence in the interface-dispatching
// fallback kernel. It is bit-identical to the scalar helpers in package
// bregman (it calls them), at the old per-coordinate virtual-call cost.
func Generic(div bregman.Divergence) Kernel { return genericKernel{div: div} }

// clamp0 applies bregman.Distance's non-negativity clamp.
func clamp0(s float64) float64 {
	if s < 0 {
		return 0
	}
	return s
}

// finite2 reports whether both accumulators are finite; an infinite or NaN
// geodesic point surfaces as a non-finite divergence on at least one side.
func finite2(a, b float64) bool {
	return !math.IsInf(a, 0) && !math.IsNaN(a) && !math.IsInf(b, 0) && !math.IsNaN(b)
}

// ---------------------------------------------------------------------------
// Squared Euclidean: φ(t) = t². The one kernel allowed to deviate from the
// scalar op order — the fused closed form Σ(x−y)² runs in 3 FLOPs per
// coordinate instead of 8 and is exact at x = y.
// ---------------------------------------------------------------------------

type l2Kernel struct{}

func (l2Kernel) Name() string                   { return "l2" }
func (l2Kernel) Divergence() bregman.Divergence { return bregman.SquaredEuclidean{} }

func (l2Kernel) Distance(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("bregman: dimension mismatch")
	}
	var s float64
	for j, xv := range x {
		d := xv - y[j]
		s += d * d
	}
	return s
}

func (k l2Kernel) DistancesTo(q []float64, block FlatBlock, out []float64) {
	dim := block.Dim
	for i := 0; i < block.N; i++ {
		row := block.Data[i*dim : (i+1)*dim]
		var s float64
		for j, xv := range row {
			d := xv - q[j]
			s += d * d
		}
		out[i] = s
	}
}

func (l2Kernel) GradVec(dst, y []float64) {
	for j, v := range y {
		dst[j] = 2 * v
	}
}

func (l2Kernel) GradInvVec(dst, g []float64) {
	for j, v := range g {
		dst[j] = v / 2
	}
}

func (k l2Kernel) GeodesicStep(gq, gmu, q, mu []float64, theta float64, _ []float64) (dQ, dMu float64, ok bool) {
	for j := range q {
		xt := ((1-theta)*gq[j] + theta*gmu[j]) / 2
		dq := xt - q[j]
		dm := xt - mu[j]
		dQ += dq * dq
		dMu += dm * dm
	}
	return dQ, dMu, finite2(dQ, dMu)
}

// ---------------------------------------------------------------------------
// Mahalanobis (uniform diagonal weight): φ(t) = w·t². Scalar op order kept
// bit-identical to bregman.Distance.
// ---------------------------------------------------------------------------

type mahalanobisKernel struct{ w float64 }

func (mahalanobisKernel) Name() string                     { return "mahalanobis" }
func (k mahalanobisKernel) Divergence() bregman.Divergence { return bregman.Mahalanobis{W: k.w} }

func (k mahalanobisKernel) Distance(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("bregman: dimension mismatch")
	}
	w := k.w
	var s float64
	for j, xv := range x {
		yv := y[j]
		s += w*xv*xv - w*yv*yv - 2*w*yv*(xv-yv)
	}
	return clamp0(s)
}

func (k mahalanobisKernel) DistancesTo(q []float64, block FlatBlock, out []float64) {
	dim := block.Dim
	for i := 0; i < block.N; i++ {
		out[i] = k.Distance(block.Data[i*dim:(i+1)*dim], q)
	}
}

func (k mahalanobisKernel) GradVec(dst, y []float64) {
	for j, v := range y {
		dst[j] = 2 * k.w * v
	}
}

func (k mahalanobisKernel) GradInvVec(dst, g []float64) {
	for j, v := range g {
		dst[j] = v / (2 * k.w)
	}
}

func (k mahalanobisKernel) GeodesicStep(gq, gmu, q, mu []float64, theta float64, _ []float64) (dQ, dMu float64, ok bool) {
	w := k.w
	for j := range q {
		xt := ((1-theta)*gq[j] + theta*gmu[j]) / (2 * w)
		qv, mv := q[j], mu[j]
		dQ += w*xt*xt - w*qv*qv - 2*w*qv*(xt-qv)
		dMu += w*xt*xt - w*mv*mv - 2*w*mv*(xt-mv)
	}
	return clamp0(dQ), clamp0(dMu), finite2(dQ, dMu)
}

// ---------------------------------------------------------------------------
// Itakura–Saito: φ(t) = −log t, φ′(t) = −1/t. Bit-identical op order.
// ---------------------------------------------------------------------------

type isKernel struct{}

func (isKernel) Name() string                   { return "is" }
func (isKernel) Divergence() bregman.Divergence { return bregman.ItakuraSaito{} }

func (isKernel) Distance(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("bregman: dimension mismatch")
	}
	var s float64
	for j, xv := range x {
		yv := y[j]
		s += -math.Log(xv) - (-math.Log(yv)) - (-1/yv)*(xv-yv)
	}
	return clamp0(s)
}

func (k isKernel) DistancesTo(q []float64, block FlatBlock, out []float64) {
	dim := block.Dim
	for i := 0; i < block.N; i++ {
		out[i] = k.Distance(block.Data[i*dim:(i+1)*dim], q)
	}
}

func (isKernel) GradVec(dst, y []float64) {
	for j, v := range y {
		dst[j] = -1 / v
	}
}

func (isKernel) GradInvVec(dst, g []float64) {
	for j, v := range g {
		dst[j] = -1 / v
	}
}

func (isKernel) GeodesicStep(gq, gmu, q, mu []float64, theta float64, _ []float64) (dQ, dMu float64, ok bool) {
	for j := range q {
		xt := -1 / ((1-theta)*gq[j] + theta*gmu[j])
		if math.IsInf(xt, 0) || math.IsNaN(xt) {
			return dQ, dMu, false
		}
		qv, mv := q[j], mu[j]
		dQ += -math.Log(xt) - (-math.Log(qv)) - (-1/qv)*(xt-qv)
		dMu += -math.Log(xt) - (-math.Log(mv)) - (-1/mv)*(xt-mv)
	}
	return clamp0(dQ), clamp0(dMu), finite2(dQ, dMu)
}

// ---------------------------------------------------------------------------
// Exponential: φ(t) = eᵗ, φ′(t) = eᵗ. Bit-identical op order.
// ---------------------------------------------------------------------------

type expKernel struct{}

func (expKernel) Name() string                   { return "exp" }
func (expKernel) Divergence() bregman.Divergence { return bregman.Exponential{} }

func (expKernel) Distance(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("bregman: dimension mismatch")
	}
	var s float64
	for j, xv := range x {
		ey := math.Exp(y[j])
		s += math.Exp(xv) - ey - ey*(xv-y[j])
	}
	return clamp0(s)
}

func (k expKernel) DistancesTo(q []float64, block FlatBlock, out []float64) {
	// The query-side exponentials are loop-invariant across the block; with
	// math.Exp dominating the per-coordinate cost, hoisting them into a
	// scratch-free rescan would still recompute them N times. They are
	// recomputed here to preserve the exact scalar op order (bit
	// compatibility beats the constant factor; see the package comment).
	dim := block.Dim
	for i := 0; i < block.N; i++ {
		out[i] = k.Distance(block.Data[i*dim:(i+1)*dim], q)
	}
}

func (expKernel) GradVec(dst, y []float64) {
	for j, v := range y {
		dst[j] = math.Exp(v)
	}
}

func (expKernel) GradInvVec(dst, g []float64) {
	for j, v := range g {
		dst[j] = math.Log(v)
	}
}

func (expKernel) GeodesicStep(gq, gmu, q, mu []float64, theta float64, _ []float64) (dQ, dMu float64, ok bool) {
	for j := range q {
		xt := math.Log((1-theta)*gq[j] + theta*gmu[j])
		if math.IsInf(xt, 0) || math.IsNaN(xt) {
			return dQ, dMu, false
		}
		ext := math.Exp(xt)
		eq := math.Exp(q[j])
		em := math.Exp(mu[j])
		dQ += ext - eq - eq*(xt-q[j])
		dMu += ext - em - em*(xt-mu[j])
	}
	return clamp0(dQ), clamp0(dMu), finite2(dQ, dMu)
}

// ---------------------------------------------------------------------------
// Generalized KL: φ(t) = t·log t − t, φ′(t) = log t. Bit-identical op order.
// ---------------------------------------------------------------------------

type gklKernel struct{}

func (gklKernel) Name() string                   { return "gkl" }
func (gklKernel) Divergence() bregman.Divergence { return bregman.GeneralizedKL{} }

func (gklKernel) Distance(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("bregman: dimension mismatch")
	}
	var s float64
	for j, xv := range x {
		yv := y[j]
		s += (xv*math.Log(xv) - xv) - (yv*math.Log(yv) - yv) - math.Log(yv)*(xv-yv)
	}
	return clamp0(s)
}

func (k gklKernel) DistancesTo(q []float64, block FlatBlock, out []float64) {
	dim := block.Dim
	for i := 0; i < block.N; i++ {
		out[i] = k.Distance(block.Data[i*dim:(i+1)*dim], q)
	}
}

func (gklKernel) GradVec(dst, y []float64) {
	for j, v := range y {
		dst[j] = math.Log(v)
	}
}

func (gklKernel) GradInvVec(dst, g []float64) {
	for j, v := range g {
		dst[j] = math.Exp(v)
	}
}

func (gklKernel) GeodesicStep(gq, gmu, q, mu []float64, theta float64, _ []float64) (dQ, dMu float64, ok bool) {
	for j := range q {
		xt := math.Exp((1-theta)*gq[j] + theta*gmu[j])
		if math.IsInf(xt, 0) || math.IsNaN(xt) {
			return dQ, dMu, false
		}
		qv, mv := q[j], mu[j]
		phiX := xt*math.Log(xt) - xt
		dQ += phiX - (qv*math.Log(qv) - qv) - math.Log(qv)*(xt-qv)
		dMu += phiX - (mv*math.Log(mv) - mv) - math.Log(mv)*(xt-mv)
	}
	return clamp0(dQ), clamp0(dMu), finite2(dQ, dMu)
}

// ---------------------------------------------------------------------------
// Shannon entropy: φ(t) = t·log t, φ′(t) = log t + 1. Bit-identical.
// ---------------------------------------------------------------------------

type shannonKernel struct{}

func (shannonKernel) Name() string                   { return "shannon" }
func (shannonKernel) Divergence() bregman.Divergence { return bregman.ShannonEntropy{} }

func (shannonKernel) Distance(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("bregman: dimension mismatch")
	}
	var s float64
	for j, xv := range x {
		yv := y[j]
		s += xv*math.Log(xv) - yv*math.Log(yv) - (math.Log(yv)+1)*(xv-yv)
	}
	return clamp0(s)
}

func (k shannonKernel) DistancesTo(q []float64, block FlatBlock, out []float64) {
	dim := block.Dim
	for i := 0; i < block.N; i++ {
		out[i] = k.Distance(block.Data[i*dim:(i+1)*dim], q)
	}
}

func (shannonKernel) GradVec(dst, y []float64) {
	for j, v := range y {
		dst[j] = math.Log(v) + 1
	}
}

func (shannonKernel) GradInvVec(dst, g []float64) {
	for j, v := range g {
		dst[j] = math.Exp(v - 1)
	}
}

func (shannonKernel) GeodesicStep(gq, gmu, q, mu []float64, theta float64, _ []float64) (dQ, dMu float64, ok bool) {
	for j := range q {
		xt := math.Exp((1-theta)*gq[j] + theta*gmu[j] - 1)
		if math.IsInf(xt, 0) || math.IsNaN(xt) {
			return dQ, dMu, false
		}
		qv, mv := q[j], mu[j]
		phiX := xt * math.Log(xt)
		dQ += phiX - qv*math.Log(qv) - (math.Log(qv)+1)*(xt-qv)
		dMu += phiX - mv*math.Log(mv) - (math.Log(mv)+1)*(xt-mv)
	}
	return clamp0(dQ), clamp0(dMu), finite2(dQ, dMu)
}

// ---------------------------------------------------------------------------
// Burg entropy: φ(t) = −log t + t − 1, φ′(t) = 1 − 1/t. Bit-identical.
// ---------------------------------------------------------------------------

type burgKernel struct{}

func (burgKernel) Name() string                   { return "burg" }
func (burgKernel) Divergence() bregman.Divergence { return bregman.BurgEntropy{} }

func (burgKernel) Distance(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("bregman: dimension mismatch")
	}
	var s float64
	for j, xv := range x {
		yv := y[j]
		s += (-math.Log(xv) + xv - 1) - (-math.Log(yv) + yv - 1) - (1-1/yv)*(xv-yv)
	}
	return clamp0(s)
}

func (k burgKernel) DistancesTo(q []float64, block FlatBlock, out []float64) {
	dim := block.Dim
	for i := 0; i < block.N; i++ {
		out[i] = k.Distance(block.Data[i*dim:(i+1)*dim], q)
	}
}

func (burgKernel) GradVec(dst, y []float64) {
	for j, v := range y {
		dst[j] = 1 - 1/v
	}
}

func (burgKernel) GradInvVec(dst, g []float64) {
	for j, v := range g {
		dst[j] = 1 / (1 - v)
	}
}

func (burgKernel) GeodesicStep(gq, gmu, q, mu []float64, theta float64, _ []float64) (dQ, dMu float64, ok bool) {
	for j := range q {
		xt := 1 / (1 - ((1-theta)*gq[j] + theta*gmu[j]))
		if math.IsInf(xt, 0) || math.IsNaN(xt) {
			return dQ, dMu, false
		}
		qv, mv := q[j], mu[j]
		phiX := -math.Log(xt) + xt - 1
		dQ += phiX - (-math.Log(qv) + qv - 1) - (1-1/qv)*(xt-qv)
		dMu += phiX - (-math.Log(mv) + mv - 1) - (1-1/mv)*(xt-mv)
	}
	return clamp0(dQ), clamp0(dMu), finite2(dQ, dMu)
}

// ---------------------------------------------------------------------------
// Generic fallback: any bregman.Divergence, at interface-dispatch cost.
// ---------------------------------------------------------------------------

type genericKernel struct{ div bregman.Divergence }

func (k genericKernel) Name() string                   { return k.div.Name() }
func (k genericKernel) Divergence() bregman.Divergence { return k.div }

func (k genericKernel) Distance(x, y []float64) float64 {
	return bregman.Distance(k.div, x, y)
}

func (k genericKernel) DistancesTo(q []float64, block FlatBlock, out []float64) {
	dim := block.Dim
	for i := 0; i < block.N; i++ {
		out[i] = bregman.Distance(k.div, block.Data[i*dim:(i+1)*dim], q)
	}
}

func (k genericKernel) GradVec(dst, y []float64) {
	bregman.GradVec(k.div, dst, y)
}

func (k genericKernel) GradInvVec(dst, g []float64) {
	bregman.GradInvVec(k.div, dst, g)
}

func (k genericKernel) GeodesicStep(gq, gmu, q, mu []float64, theta float64, scratch []float64) (dQ, dMu float64, ok bool) {
	// The reference sequence the fused kernels collapse: interpolate in
	// gradient space (alloc-free into the caller's scratch), invert, and
	// measure both divergences from the materialized geodesic point.
	xt := scratch[:len(q)]
	vecmath.LerpInto(xt, gq, gmu, theta)
	bregman.GradInvVec(k.div, xt, xt)
	for _, v := range xt {
		if math.IsInf(v, 0) || math.IsNaN(v) {
			return 0, 0, false
		}
	}
	dQ = bregman.Distance(k.div, xt, q)
	dMu = bregman.Distance(k.div, xt, mu)
	return dQ, dMu, finite2(dQ, dMu)
}
