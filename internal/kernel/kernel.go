// Package kernel provides monomorphized Bregman-divergence distance kernels
// over flat, row-major point storage. It is the hot inner layer of the
// search path: every distance the system evaluates in bulk — BB-tree leaf
// scans, node-bound geodesic projections, candidate refinement, brute-force
// ground truth — goes through a concrete (non-interface) kernel chosen once
// per index or per query, instead of paying two virtual calls (Phi, Grad)
// per coordinate per point through the bregman.Divergence interface.
//
// Numerical contract: every kernel reproduces bregman.Distance's arithmetic
// bit for bit — the same per-coordinate expression φ(x)−φ(y)−φ′(y)(x−y)
// with inlined generator math, summed left to right through a single
// ordered accumulator and clamped at 0 — with one documented exception: the
// squared-Euclidean kernel uses the fused closed form Σ(x−y)² with four
// independent accumulator chains, which differs from the scalar three-term
// expansion by rounding (≈1 ULP on benign data). All search paths route
// through the same kernel, so results stay internally consistent; the
// property tests in kernel_test.go pin bit equality for every other
// divergence and a tight relative tolerance for L2.
//
// Two structural rules keep the contract honest while making the loops
// fast:
//
//   - This file owns validation and dispatch; loops.go owns arithmetic.
//     Every function in loops.go compiles with zero bounds checks
//     (enforced by the ssa/check_bce CI step) and performs the
//     per-coordinate expressions in the oracle's exact order.
//   - Query-side subexpressions (log q, exp q, 1/q, …) are loop-invariant
//     across a block scan or a refinement pass. PrepQuery hoists them once
//     per query; DistancesTo and DistancePrep then read the precomputed
//     values instead of recomputing them per point. Reading a stored
//     float64 instead of re-deriving it from the same input is
//     bit-identical, so hoisting never changes a result.
package kernel

import (
	"math"
	"unsafe"

	"brepartition/internal/bregman"
	"brepartition/internal/vecmath"
)

// FlatBlock is a contiguous row-major block of N points with Dim
// coordinates each: point i occupies Data[i*Dim : (i+1)*Dim]. It is the
// storage format of the disk store's page arena and the BB-tree's subspace
// arena, and the unit the batched kernels stream over.
type FlatBlock struct {
	Data []float64
	Dim  int
	N    int
}

// Row returns point i's coordinates as a full-capacity-clamped view into
// the block (appends can never bleed into the next row).
func (b FlatBlock) Row(i int) []float64 {
	off := i * b.Dim
	return b.Data[off : off+b.Dim : off+b.Dim]
}

// Slice returns the sub-block of rows [lo, hi).
func (b FlatBlock) Slice(lo, hi int) FlatBlock {
	return FlatBlock{Data: b.Data[lo*b.Dim : hi*b.Dim], Dim: b.Dim, N: hi - lo}
}

// Flatten copies points into a fresh row-major block. All rows must share
// one dimensionality; Flatten panics otherwise (a programming error on the
// construction path).
func Flatten(points [][]float64) FlatBlock {
	if len(points) == 0 {
		return FlatBlock{}
	}
	dim := len(points[0])
	data := make([]float64, len(points)*dim)
	for i, p := range points {
		if len(p) != dim {
			panic("kernel: ragged point set")
		}
		copy(data[i*dim:], p)
	}
	return FlatBlock{Data: data, Dim: dim, N: len(points)}
}

// Kernel is one divergence's batched evaluation surface. Implementations
// are concrete structs so every method body dispatches straight into the
// unrolled, bounds-check-free loops in loops.go; the interface is crossed
// once per block or per vector, never per coordinate.
//
// All methods follow bregman's conventions: Distance computes D_f(x, y)
// (first argument is the data point), no domain checking is performed
// (callers validate at the API boundary), and negative roundoff is clamped
// to 0 exactly as bregman.Distance does.
type Kernel interface {
	// Name returns the underlying divergence's registry name.
	Name() string
	// Divergence returns the divergence this kernel evaluates.
	Divergence() bregman.Divergence

	// Distance computes D_f(x, y). It panics on a length mismatch, like
	// bregman.Distance.
	Distance(x, y []float64) float64

	// DistancesTo evaluates the query against a block in one pass:
	// out[i] = D_f(block.Row(i), q) for i < block.N, bit-identical to
	// Distance(block.Row(i), q) for every kernel (including L2, whose
	// Distance shares the same fused sum).
	//
	// Contract — violations panic, they do not silently misbehave:
	//   - len(q) == block.Dim
	//   - len(out) >= block.N; out may be longer, in which case only
	//     out[:block.N] is written and the tail is left untouched
	//   - len(block.Data) >= block.N*block.Dim
	//   - out must not alias block.Data or q: implementations stream
	//     block rows while writing out, so an aliasing destination would
	//     corrupt later rows (or the query) before they are read.
	DistancesTo(q []float64, block FlatBlock, out []float64)

	// QueryScratchLen returns the scratch length PrepQuery requires for a
	// d-dimensional query; 0 when the kernel has no query-side invariants
	// worth hoisting.
	QueryScratchLen(d int) int

	// PrepQuery precomputes the query-side invariants of Distance
	// (log q, exp q, 1/q, …) into scratch, which must have
	// len >= QueryScratchLen(len(q)). The layout is kernel-private; the
	// result is consumed by DistancePrep for the same q.
	PrepQuery(scratch, q []float64)

	// DistancePrep computes D_f(x, q) bit-identically to Distance(x, q),
	// reading the query-side terms from scratch as filled by PrepQuery.
	// Callers amortize one PrepQuery over many DistancePrep calls when
	// scanning one query against points not in flat-block form.
	DistancePrep(x, q, scratch []float64) float64

	// GradVec writes ∇f(y) into dst element-wise. dst must have
	// len >= len(y) (panics otherwise); only dst[:len(y)] is written.
	GradVec(dst, y []float64)

	// GradInvVec writes (∇f)⁻¹(g) into dst element-wise, under the same
	// length contract as GradVec.
	GradInvVec(dst, g []float64)

	// GeodesicStep evaluates the dual-space geodesic point
	// x(θ) = (∇f)⁻¹((1−θ)·gq + θ·gmu) and returns its divergences to the
	// query and the ball center, dQ = D_f(x(θ), q) and dMu = D_f(x(θ), mu),
	// without materializing x(θ) (concrete kernels keep it in registers).
	// gq and gmu MUST be this kernel's GradVec outputs for q and mu
	// respectively: the fused kernels reuse the transcendental values the
	// gradients already hold (e.g. exp's gq[j] = e^q[j]) in place of
	// recomputing them, which is bit-identical exactly because GradVec
	// computed them from the same inputs. ok is false when x(θ) is not
	// finite, in which case the caller must abandon the bound (matching
	// bbtree's finiteVec guard). scratch, when the implementation needs
	// it (the generic fallback), must have len >= len(q); concrete
	// kernels ignore it.
	GeodesicStep(gq, gmu, q, mu []float64, theta float64, scratch []float64) (dQ, dMu float64, ok bool)
}

// For returns the monomorphized kernel for div when one is registered
// (squared Euclidean, Mahalanobis, Itakura–Saito, exponential, generalized
// KL, Shannon entropy, Burg entropy), and the generic interface-dispatching
// fallback otherwise. The choice is made once; hot loops never re-dispatch.
func For(div bregman.Divergence) Kernel {
	switch d := div.(type) {
	case bregman.SquaredEuclidean:
		return l2Kernel{}
	case bregman.Mahalanobis:
		return mahalanobisKernel{w: d.W}
	case bregman.ItakuraSaito:
		return isKernel{}
	case bregman.Exponential:
		return expKernel{}
	case bregman.GeneralizedKL:
		return gklKernel{}
	case bregman.ShannonEntropy:
		return shannonKernel{}
	case bregman.BurgEntropy:
		return burgKernel{}
	default:
		return Generic(div)
	}
}

// Generic wraps any bregman.Divergence in the interface-dispatching
// fallback kernel. It is bit-identical to the scalar helpers in package
// bregman (it calls them), at the old per-coordinate virtual-call cost.
func Generic(div bregman.Divergence) Kernel { return genericKernel{div: div} }

// clamp0 applies bregman.Distance's non-negativity clamp.
func clamp0(s float64) float64 {
	if s < 0 {
		return 0
	}
	return s
}

// finite2 reports whether both accumulators are finite; an infinite or NaN
// geodesic point surfaces as a non-finite divergence on at least one side.
func finite2(a, b float64) bool {
	return !math.IsInf(a, 0) && !math.IsNaN(a) && !math.IsInf(b, 0) && !math.IsNaN(b)
}

// hoistCap bounds the dimensionality served by the stack-resident prep
// buffers in DistancesTo. Blocks with Dim above it (or with fewer than
// hoistMinRows rows, where the prep pass wouldn't amortize) take the
// per-row Distance fallback, which is bit-identical.
const (
	hoistCap     = 512
	hoistMinRows = 4
)

// overlaps reports whether two slices share any backing memory.
func overlaps(a, b []float64) bool {
	if len(a) == 0 || len(b) == 0 {
		return false
	}
	a0 := uintptr(unsafe.Pointer(&a[0]))
	a1 := a0 + uintptr(len(a))*unsafe.Sizeof(a[0])
	b0 := uintptr(unsafe.Pointer(&b[0]))
	b1 := b0 + uintptr(len(b))*unsafe.Sizeof(b[0])
	return a0 < b1 && b0 < a1
}

// checkDistancesTo enforces the DistancesTo contract documented on the
// Kernel interface. The checks run once per block — never per coordinate —
// so the hot loops can drop their own bounds checks safely.
func checkDistancesTo(q []float64, block FlatBlock, out []float64) {
	if len(q) != block.Dim {
		panic("kernel: DistancesTo query length does not match block.Dim")
	}
	if len(out) < block.N {
		panic("kernel: DistancesTo out shorter than block.N")
	}
	if len(block.Data) < block.N*block.Dim {
		panic("kernel: DistancesTo block data shorter than N*Dim")
	}
	if overlaps(out, block.Data) || overlaps(out, q) {
		panic("kernel: DistancesTo out aliases block or query memory")
	}
}

// checkGrad enforces the GradVec/GradInvVec destination-length contract.
func checkGrad(dst, src []float64) {
	if len(dst) < len(src) {
		panic("kernel: gradient dst shorter than input")
	}
}

// checkPrep enforces DistancePrep's length contracts: x and q must match
// (as in Distance) and scratch must hold the kernel's prepared terms.
func checkPrep(x, q, scratch []float64, need int) {
	if len(x) != len(q) {
		panic("bregman: dimension mismatch")
	}
	if len(scratch) < need {
		panic("kernel: DistancePrep scratch shorter than QueryScratchLen")
	}
}

// ---------------------------------------------------------------------------
// Squared Euclidean: φ(t) = t². The one kernel allowed to deviate from the
// scalar op order — the fused closed form Σ(x−y)² runs in 3 FLOPs per
// coordinate instead of 8 and is exact at x = y. Distance, DistancePrep and
// DistancesTo all route through l2Sum, so they agree bit for bit with each
// other even where they differ from the oracle by rounding.
// ---------------------------------------------------------------------------

type l2Kernel struct{}

func (l2Kernel) Name() string                   { return "l2" }
func (l2Kernel) Divergence() bregman.Divergence { return bregman.SquaredEuclidean{} }

func (l2Kernel) Distance(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("bregman: dimension mismatch")
	}
	return l2Sum(x, y)
}

func (l2Kernel) DistancesTo(q []float64, block FlatBlock, out []float64) {
	checkDistancesTo(q, block, out)
	l2Block(block.Data, q, out[:block.N])
}

func (l2Kernel) QueryScratchLen(int) int  { return 0 }
func (l2Kernel) PrepQuery(_, _ []float64) {}
func (k l2Kernel) DistancePrep(x, q, _ []float64) float64 {
	return k.Distance(x, q)
}

func (l2Kernel) GradVec(dst, y []float64) {
	checkGrad(dst, y)
	gradScaleLoop(dst[:len(y)], y, 2)
}

func (l2Kernel) GradInvVec(dst, g []float64) {
	checkGrad(dst, g)
	gradInvScaleLoop(dst[:len(g)], g, 2)
}

func (l2Kernel) GeodesicStep(gq, gmu, q, mu []float64, theta float64, _ []float64) (dQ, dMu float64, ok bool) {
	dQ, dMu = l2Geo(gq, gmu, q, mu, theta)
	return dQ, dMu, finite2(dQ, dMu)
}

// ---------------------------------------------------------------------------
// Mahalanobis (uniform diagonal weight): φ(t) = w·t². Scalar op order kept
// bit-identical to bregman.Distance.
// ---------------------------------------------------------------------------

type mahalanobisKernel struct{ w float64 }

func (mahalanobisKernel) Name() string                     { return "mahalanobis" }
func (k mahalanobisKernel) Divergence() bregman.Divergence { return bregman.Mahalanobis{W: k.w} }

func (k mahalanobisKernel) Distance(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("bregman: dimension mismatch")
	}
	return clamp0(mahaSum(k.w, x, y))
}

func (k mahalanobisKernel) DistancesTo(q []float64, block FlatBlock, out []float64) {
	checkDistancesTo(q, block, out)
	if block.Dim <= hoistCap && block.N >= hoistMinRows {
		var buf [2 * hoistCap]float64
		p1, p2 := buf[:block.Dim], buf[hoistCap:hoistCap+block.Dim]
		mahaPrep(k.w, p1, p2, q)
		mahaBlock(k.w, block.Data, q, p1, p2, out[:block.N])
		return
	}
	for i := 0; i < block.N; i++ {
		out[i] = k.Distance(block.Row(i), q)
	}
}

func (mahalanobisKernel) QueryScratchLen(d int) int { return 2 * d }

func (k mahalanobisKernel) PrepQuery(scratch, q []float64) {
	d := len(q)
	mahaPrep(k.w, scratch[:d], scratch[d:2*d], q)
}

func (k mahalanobisKernel) DistancePrep(x, q, scratch []float64) float64 {
	d := len(q)
	checkPrep(x, q, scratch, 2*d)
	return clamp0(mahaPrepSum(k.w, x, q, scratch[:d], scratch[d:2*d]))
}

func (k mahalanobisKernel) GradVec(dst, y []float64) {
	checkGrad(dst, y)
	gradScaleLoop(dst[:len(y)], y, 2*k.w)
}

func (k mahalanobisKernel) GradInvVec(dst, g []float64) {
	checkGrad(dst, g)
	gradInvScaleLoop(dst[:len(g)], g, 2*k.w)
}

func (k mahalanobisKernel) GeodesicStep(gq, gmu, q, mu []float64, theta float64, _ []float64) (dQ, dMu float64, ok bool) {
	dQ, dMu = mahaGeo(k.w, gq, gmu, q, mu, theta)
	return clamp0(dQ), clamp0(dMu), finite2(dQ, dMu)
}

// ---------------------------------------------------------------------------
// Itakura–Saito: φ(t) = −log t, φ′(t) = −1/t. Bit-identical op order.
// ---------------------------------------------------------------------------

type isKernel struct{}

func (isKernel) Name() string                   { return "is" }
func (isKernel) Divergence() bregman.Divergence { return bregman.ItakuraSaito{} }

func (isKernel) Distance(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("bregman: dimension mismatch")
	}
	return clamp0(isSum(x, y))
}

func (k isKernel) DistancesTo(q []float64, block FlatBlock, out []float64) {
	checkDistancesTo(q, block, out)
	if block.Dim <= hoistCap && block.N >= hoistMinRows {
		var buf [2 * hoistCap]float64
		p1, p2 := buf[:block.Dim], buf[hoistCap:hoistCap+block.Dim]
		isPrep(p1, p2, q)
		isBlock(block.Data, q, p1, p2, out[:block.N])
		return
	}
	for i := 0; i < block.N; i++ {
		out[i] = k.Distance(block.Row(i), q)
	}
}

func (isKernel) QueryScratchLen(d int) int { return 2 * d }

func (isKernel) PrepQuery(scratch, q []float64) {
	d := len(q)
	isPrep(scratch[:d], scratch[d:2*d], q)
}

func (isKernel) DistancePrep(x, q, scratch []float64) float64 {
	d := len(q)
	checkPrep(x, q, scratch, 2*d)
	return clamp0(isPrepSum(x, q, scratch[:d], scratch[d:2*d]))
}

func (isKernel) GradVec(dst, y []float64) {
	checkGrad(dst, y)
	gradNegInvLoop(dst[:len(y)], y)
}

func (isKernel) GradInvVec(dst, g []float64) {
	checkGrad(dst, g)
	gradNegInvLoop(dst[:len(g)], g)
}

func (isKernel) GeodesicStep(gq, gmu, q, mu []float64, theta float64, _ []float64) (dQ, dMu float64, ok bool) {
	dQ, dMu, ok = isGeo(gq, gmu, q, mu, theta)
	if !ok {
		return dQ, dMu, false
	}
	return clamp0(dQ), clamp0(dMu), finite2(dQ, dMu)
}

// ---------------------------------------------------------------------------
// Exponential: φ(t) = eᵗ, φ′(t) = eᵗ. Bit-identical op order; the two
// query-side exponentials per coordinate are hoisted by PrepQuery, halving
// the math.Exp count on the block scan path.
// ---------------------------------------------------------------------------

type expKernel struct{}

func (expKernel) Name() string                   { return "exp" }
func (expKernel) Divergence() bregman.Divergence { return bregman.Exponential{} }

func (expKernel) Distance(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("bregman: dimension mismatch")
	}
	return clamp0(expSum(x, y))
}

func (k expKernel) DistancesTo(q []float64, block FlatBlock, out []float64) {
	checkDistancesTo(q, block, out)
	if block.Dim <= hoistCap && block.N >= hoistMinRows {
		var buf [hoistCap]float64
		p1 := buf[:block.Dim]
		expPrep(p1, q)
		expBlock(block.Data, q, p1, out[:block.N])
		return
	}
	for i := 0; i < block.N; i++ {
		out[i] = k.Distance(block.Row(i), q)
	}
}

func (expKernel) QueryScratchLen(d int) int { return d }

func (expKernel) PrepQuery(scratch, q []float64) {
	expPrep(scratch[:len(q)], q)
}

func (expKernel) DistancePrep(x, q, scratch []float64) float64 {
	checkPrep(x, q, scratch, len(q))
	return clamp0(expPrepSum(x, q, scratch[:len(q)]))
}

func (expKernel) GradVec(dst, y []float64) {
	checkGrad(dst, y)
	gradExpLoop(dst[:len(y)], y)
}

func (expKernel) GradInvVec(dst, g []float64) {
	checkGrad(dst, g)
	gradLogLoop(dst[:len(g)], g)
}

func (expKernel) GeodesicStep(gq, gmu, q, mu []float64, theta float64, _ []float64) (dQ, dMu float64, ok bool) {
	dQ, dMu, ok = expGeo(gq, gmu, q, mu, theta)
	if !ok {
		return dQ, dMu, false
	}
	return clamp0(dQ), clamp0(dMu), finite2(dQ, dMu)
}

// ---------------------------------------------------------------------------
// Generalized KL: φ(t) = t·log t − t, φ′(t) = log t. Bit-identical op order.
// ---------------------------------------------------------------------------

type gklKernel struct{}

func (gklKernel) Name() string                   { return "gkl" }
func (gklKernel) Divergence() bregman.Divergence { return bregman.GeneralizedKL{} }

func (gklKernel) Distance(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("bregman: dimension mismatch")
	}
	return clamp0(gklSum(x, y))
}

func (k gklKernel) DistancesTo(q []float64, block FlatBlock, out []float64) {
	checkDistancesTo(q, block, out)
	if block.Dim <= hoistCap && block.N >= hoistMinRows {
		var buf [2 * hoistCap]float64
		p1, p2 := buf[:block.Dim], buf[hoistCap:hoistCap+block.Dim]
		gklPrep(p1, p2, q)
		gklBlock(block.Data, q, p1, p2, out[:block.N])
		return
	}
	for i := 0; i < block.N; i++ {
		out[i] = k.Distance(block.Row(i), q)
	}
}

func (gklKernel) QueryScratchLen(d int) int { return 2 * d }

func (gklKernel) PrepQuery(scratch, q []float64) {
	d := len(q)
	gklPrep(scratch[:d], scratch[d:2*d], q)
}

func (gklKernel) DistancePrep(x, q, scratch []float64) float64 {
	d := len(q)
	checkPrep(x, q, scratch, 2*d)
	return clamp0(gklPrepSum(x, q, scratch[:d], scratch[d:2*d]))
}

func (gklKernel) GradVec(dst, y []float64) {
	checkGrad(dst, y)
	gradLogLoop(dst[:len(y)], y)
}

func (gklKernel) GradInvVec(dst, g []float64) {
	checkGrad(dst, g)
	gradExpLoop(dst[:len(g)], g)
}

func (gklKernel) GeodesicStep(gq, gmu, q, mu []float64, theta float64, _ []float64) (dQ, dMu float64, ok bool) {
	dQ, dMu, ok = gklGeo(gq, gmu, q, mu, theta)
	if !ok {
		return dQ, dMu, false
	}
	return clamp0(dQ), clamp0(dMu), finite2(dQ, dMu)
}

// ---------------------------------------------------------------------------
// Shannon entropy: φ(t) = t·log t, φ′(t) = log t + 1. Bit-identical.
// ---------------------------------------------------------------------------

type shannonKernel struct{}

func (shannonKernel) Name() string                   { return "shannon" }
func (shannonKernel) Divergence() bregman.Divergence { return bregman.ShannonEntropy{} }

func (shannonKernel) Distance(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("bregman: dimension mismatch")
	}
	return clamp0(shannonSum(x, y))
}

func (k shannonKernel) DistancesTo(q []float64, block FlatBlock, out []float64) {
	checkDistancesTo(q, block, out)
	if block.Dim <= hoistCap && block.N >= hoistMinRows {
		var buf [2 * hoistCap]float64
		p1, p2 := buf[:block.Dim], buf[hoistCap:hoistCap+block.Dim]
		shannonPrep(p1, p2, q)
		shannonBlock(block.Data, q, p1, p2, out[:block.N])
		return
	}
	for i := 0; i < block.N; i++ {
		out[i] = k.Distance(block.Row(i), q)
	}
}

func (shannonKernel) QueryScratchLen(d int) int { return 2 * d }

func (shannonKernel) PrepQuery(scratch, q []float64) {
	d := len(q)
	shannonPrep(scratch[:d], scratch[d:2*d], q)
}

func (shannonKernel) DistancePrep(x, q, scratch []float64) float64 {
	d := len(q)
	checkPrep(x, q, scratch, 2*d)
	return clamp0(shannonPrepSum(x, q, scratch[:d], scratch[d:2*d]))
}

func (shannonKernel) GradVec(dst, y []float64) {
	checkGrad(dst, y)
	gradLogP1Loop(dst[:len(y)], y)
}

func (shannonKernel) GradInvVec(dst, g []float64) {
	checkGrad(dst, g)
	gradExpM1Loop(dst[:len(g)], g)
}

func (shannonKernel) GeodesicStep(gq, gmu, q, mu []float64, theta float64, _ []float64) (dQ, dMu float64, ok bool) {
	dQ, dMu, ok = shannonGeo(gq, gmu, q, mu, theta)
	if !ok {
		return dQ, dMu, false
	}
	return clamp0(dQ), clamp0(dMu), finite2(dQ, dMu)
}

// ---------------------------------------------------------------------------
// Burg entropy: φ(t) = −log t + t − 1, φ′(t) = 1 − 1/t. Bit-identical.
// ---------------------------------------------------------------------------

type burgKernel struct{}

func (burgKernel) Name() string                   { return "burg" }
func (burgKernel) Divergence() bregman.Divergence { return bregman.BurgEntropy{} }

func (burgKernel) Distance(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("bregman: dimension mismatch")
	}
	return clamp0(burgSum(x, y))
}

func (k burgKernel) DistancesTo(q []float64, block FlatBlock, out []float64) {
	checkDistancesTo(q, block, out)
	if block.Dim <= hoistCap && block.N >= hoistMinRows {
		var buf [2 * hoistCap]float64
		p1, p2 := buf[:block.Dim], buf[hoistCap:hoistCap+block.Dim]
		burgPrep(p1, p2, q)
		burgBlock(block.Data, q, p1, p2, out[:block.N])
		return
	}
	for i := 0; i < block.N; i++ {
		out[i] = k.Distance(block.Row(i), q)
	}
}

func (burgKernel) QueryScratchLen(d int) int { return 2 * d }

func (burgKernel) PrepQuery(scratch, q []float64) {
	d := len(q)
	burgPrep(scratch[:d], scratch[d:2*d], q)
}

func (burgKernel) DistancePrep(x, q, scratch []float64) float64 {
	d := len(q)
	checkPrep(x, q, scratch, 2*d)
	return clamp0(burgPrepSum(x, q, scratch[:d], scratch[d:2*d]))
}

func (burgKernel) GradVec(dst, y []float64) {
	checkGrad(dst, y)
	gradBurgLoop(dst[:len(y)], y)
}

func (burgKernel) GradInvVec(dst, g []float64) {
	checkGrad(dst, g)
	gradBurgInvLoop(dst[:len(g)], g)
}

func (burgKernel) GeodesicStep(gq, gmu, q, mu []float64, theta float64, _ []float64) (dQ, dMu float64, ok bool) {
	dQ, dMu, ok = burgGeo(gq, gmu, q, mu, theta)
	if !ok {
		return dQ, dMu, false
	}
	return clamp0(dQ), clamp0(dMu), finite2(dQ, dMu)
}

// ---------------------------------------------------------------------------
// Generic fallback: any bregman.Divergence, at interface-dispatch cost.
// ---------------------------------------------------------------------------

type genericKernel struct{ div bregman.Divergence }

func (k genericKernel) Name() string                   { return k.div.Name() }
func (k genericKernel) Divergence() bregman.Divergence { return k.div }

func (k genericKernel) Distance(x, y []float64) float64 {
	return bregman.Distance(k.div, x, y)
}

func (k genericKernel) DistancesTo(q []float64, block FlatBlock, out []float64) {
	checkDistancesTo(q, block, out)
	dim := block.Dim
	for i := 0; i < block.N; i++ {
		out[i] = bregman.Distance(k.div, block.Data[i*dim:(i+1)*dim], q)
	}
}

func (genericKernel) QueryScratchLen(int) int  { return 0 }
func (genericKernel) PrepQuery(_, _ []float64) {}

func (k genericKernel) DistancePrep(x, q, _ []float64) float64 {
	return bregman.Distance(k.div, x, q)
}

func (k genericKernel) GradVec(dst, y []float64) {
	checkGrad(dst, y)
	bregman.GradVec(k.div, dst, y)
}

func (k genericKernel) GradInvVec(dst, g []float64) {
	checkGrad(dst, g)
	bregman.GradInvVec(k.div, dst, g)
}

func (k genericKernel) GeodesicStep(gq, gmu, q, mu []float64, theta float64, scratch []float64) (dQ, dMu float64, ok bool) {
	// The reference sequence the fused kernels collapse: interpolate in
	// gradient space (alloc-free into the caller's scratch), invert, and
	// measure both divergences from the materialized geodesic point.
	xt := scratch[:len(q)]
	vecmath.LerpInto(xt, gq, gmu, theta)
	bregman.GradInvVec(k.div, xt, xt)
	for _, v := range xt {
		if math.IsInf(v, 0) || math.IsNaN(v) {
			return 0, 0, false
		}
	}
	dQ = bregman.Distance(k.div, xt, q)
	dMu = bregman.Distance(k.div, xt, mu)
	return dQ, dMu, finite2(dQ, dMu)
}
