package kernel

import (
	"math"
	"math/rand"
	"testing"

	"brepartition/internal/bregman"
)

// The linearization identity: ⟨ŵ(q), x̂⟩ + c(q) must equal D_f(x, q) for
// every registered divergence (up to roundoff — the functional reorders
// the summation).
func TestVAPrepMatchesDistance(t *testing.T) {
	for _, name := range bregman.Names() {
		div, err := bregman.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		k := For(div)
		rng := rand.New(rand.NewSource(42))
		lo, _ := div.Domain()
		sample := func(d int) []float64 {
			v := make([]float64, d)
			for j := range v {
				if math.IsInf(lo, -1) {
					v[j] = rng.NormFloat64() * 3
				} else {
					v[j] = lo + 0.01 + rng.Float64()*5
				}
			}
			return v
		}
		for trial := 0; trial < 50; trial++ {
			d := 1 + rng.Intn(12)
			x, q := sample(d), sample(d)
			w := make([]float64, d+1)
			c := VAPrep(k, w, q)
			xe := make([]float64, d+1)
			VAExtend(k, xe, x)
			var dot float64
			for j := range w {
				dot += w[j] * xe[j]
			}
			got := dot + c
			want := k.Distance(x, q)
			if diff := math.Abs(got - want); diff > 1e-9*(1+math.Abs(want)) {
				t.Fatalf("%s trial %d: functional %g vs Distance %g (diff %g)",
					name, trial, got, want, diff)
			}
		}
	}
}

func TestVAPrepPanicsOnShortBuffer(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	VAPrep(For(bregman.SquaredEuclidean{}), make([]float64, 3), make([]float64, 3))
}
