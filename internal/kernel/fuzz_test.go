package kernel

import (
	"math"
	"testing"

	"brepartition/internal/bregman"
)

// mapIntoDomain mirrors the FuzzDistance corpus mapping in
// internal/bregman: full-line generators fold into [-30, 30] (keeping the
// exponential family finite), positive generators into [1e-3, 1e3).
func mapIntoDomain(div bregman.Divergence, v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		v = 1
	}
	lo, _ := div.Domain()
	if lo == 0 {
		m := math.Mod(math.Abs(v), 3)
		return 1e-3 * math.Pow(10, m)
	}
	return math.Mod(v, 30)
}

// FuzzKernelDistance cross-checks every kernel against the scalar
// bregman.Distance oracle on fuzzed in-domain points. It is seeded with
// the same tuples as bregman's FuzzDistance so the two corpora explore the
// same coordinate space; run the stored corpus with `go test`, explore
// with `go test -fuzz=FuzzKernelDistance ./internal/kernel`.
func FuzzKernelDistance(f *testing.F) {
	f.Add(1.0, 2.0, 3.0, 4.0)
	f.Add(0.5, 0.5, 0.5, 0.5)
	f.Add(-7.25, 12.0, 1e-3, 1e3)
	f.Add(29.9, -29.9, 0.001, 999.0)
	f.Add(0.0, -0.0, math.Pi, math.E)

	f.Fuzz(func(t *testing.T, a, b, c, d float64) {
		for _, div := range bregman.All() {
			kern := For(div)
			x := []float64{mapIntoDomain(div, a), mapIntoDomain(div, b)}
			y := []float64{mapIntoDomain(div, c), mapIntoDomain(div, d)}
			if !bregman.InDomain(div, x) || !bregman.InDomain(div, y) {
				continue
			}

			want := bregman.Distance(div, x, y)
			got := kern.Distance(x, y)
			if kern.Name() == "l2" {
				// Fused closed form: documented-ULP compatibility at the
				// working magnitude Σx²+Σy² (the scalar expansion cancels
				// terms of exactly that size).
				var scale float64
				for j := range x {
					scale += x[j]*x[j] + y[j]*y[j]
				}
				tol := 1e-12 * math.Max(1, math.Max(scale, math.Max(math.Abs(got), math.Abs(want))))
				if math.Abs(got-want) > tol {
					t.Errorf("l2: kernel %v vs scalar %v for x=%v y=%v", got, want, x, y)
				}
			} else if got != want {
				t.Errorf("%s: kernel %v != scalar %v for x=%v y=%v (want bit equality)",
					kern.Name(), got, want, x, y)
			}

			// Self-distance stays exactly 0 through every kernel — the
			// invariant the engine's Score==0 assertions rely on.
			if self := kern.Distance(x, x); self != 0 {
				t.Errorf("%s: kernel D(x,x) = %v, want 0 (x=%v)", kern.Name(), self, x)
			}

			// The block path must agree with the scalar kernel bit for bit.
			block := Flatten([][]float64{x, y, x})
			out := make([]float64, 3)
			kern.DistancesTo(y, block, out)
			if out[0] != got || out[1] != 0 || out[2] != got {
				if !(math.IsNaN(out[0]) && math.IsNaN(got)) {
					t.Errorf("%s: DistancesTo %v disagrees with Distance %v", kern.Name(), out, got)
				}
			}
		}
	})
}
