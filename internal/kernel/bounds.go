package kernel

// Extended-space linearization helpers for the VA cold tier (Zhang et
// al., PVLDB 2009). For a decomposable generator f(x) = Σ φ(xⱼ),
//
//	D_f(x, q) = ⟨ŵ(q), x̂⟩ + c(q)
//
// with x̂ = (x₁,…,x_d, Σφ(xⱼ)), ŵ(q) = (−φ′(q₁),…,−φ′(q_d), 1) and
// c(q) = Σ (−φ(qⱼ) + qⱼφ′(qⱼ)). The per-query functional (ŵ, c) is what
// the compressed-domain first pass evaluates against quantized cells; it
// must be computed with the same arithmetic as the kernels so the exact
// re-verification of survivors agrees bit-for-bit with Distance up to
// the documented clamp.

// VAPrep computes the query-side linear functional of the extended
// space: it fills w (len(q)+1 long, panics otherwise) with ŵ(q) and
// returns the constant c(q). The gradient comes from the kernel's
// GradVec — the same monomorphized code the refinement uses — and φ from
// the divergence's generator.
func VAPrep(k Kernel, w, q []float64) float64 {
	d := len(q)
	if len(w) != d+1 {
		panic("kernel: VAPrep weight buffer must be len(q)+1")
	}
	k.GradVec(w[:d], q)
	div := k.Divergence()
	var c float64
	for j := 0; j < d; j++ {
		g := w[j]
		w[j] = -g
		c += q[j]*g - div.Phi(q[j])
	}
	w[d] = 1
	return c
}

// VAExtend fills dst (len(p)+1 long, panics otherwise) with the extended
// point x̂ = (p₁,…,p_d, Σφ(pⱼ)). Build-path helper; not a hot loop.
func VAExtend(k Kernel, dst, p []float64) {
	d := len(p)
	if len(dst) != d+1 {
		panic("kernel: VAExtend dst must be len(p)+1")
	}
	div := k.Divergence()
	var s float64
	for j, v := range p {
		dst[j] = v
		s += div.Phi(v)
	}
	dst[d] = s
}
