// Hot inner loops, isolated so the bounds-check-elimination audit can hold
// this file to zero surviving checks: CI compiles the package with
// -gcflags=-d=ssa/check_bce and fails if the compiler reports any
// IsInBounds/IsSliceInBounds on a loops.go line (scripts/check_bce.sh).
//
// Every function here follows two rules:
//
//  1. No validation. Callers (kernel.go) establish the length contracts;
//     loops guard with `len` comparisons the prove-bounds pass understands
//     (advance-by-reslicing for the unrolled body, multi-slice `i < len`
//     conditions for the tail), so no run-time check survives compilation.
//  2. Exact arithmetic contract. Each accumulation performs the same
//     per-coordinate expression as bregman.Distance in the same
//     left-to-right order, so sums are bit-identical to the scalar oracle;
//     the "Prep" variants read query-side terms from a precomputed slice
//     instead of recomputing them, which changes the operation count but
//     not one bit of any operand or result. Only the squared-Euclidean
//     loops reassociate (documented-ULP contract): l2Sum runs 8-wide with
//     four independent accumulators so the adds pipeline.
//
// The unrolled bodies are written in the 4/8-wide single-induction shape
// the compiler can keep in registers and, where the contract permits
// reassociation (L2), vectorize.
package kernel

import "math"

// ---------------------------------------------------------------------------
// Squared Euclidean
// ---------------------------------------------------------------------------

// l2Sum computes Σ(x−y)² with four independent 2-wide accumulator chains
// (documented-ULP reassociation; exact at x = y in every lane).
func l2Sum(x, y []float64) float64 {
	var s0, s1, s2, s3 float64
	for len(x) >= 8 && len(y) >= 8 {
		d0 := x[0] - y[0]
		d1 := x[1] - y[1]
		d2 := x[2] - y[2]
		d3 := x[3] - y[3]
		d4 := x[4] - y[4]
		d5 := x[5] - y[5]
		d6 := x[6] - y[6]
		d7 := x[7] - y[7]
		s0 += d0*d0 + d4*d4
		s1 += d1*d1 + d5*d5
		s2 += d2*d2 + d6*d6
		s3 += d3*d3 + d7*d7
		x, y = x[8:], y[8:]
	}
	var s float64
	for i := 0; i < len(x) && i < len(y); i++ {
		d := x[i] - y[i]
		s += d * d
	}
	return s0 + s1 + s2 + s3 + s
}

// l2Geo accumulates the fused geodesic divergences for φ(t) = t².
func l2Geo(gq, gmu, q, mu []float64, theta float64) (dQ, dMu float64) {
	a, b := 1-theta, theta
	for len(gq) >= 4 && len(gmu) >= 4 && len(q) >= 4 && len(mu) >= 4 {
		xt0 := (a*gq[0] + b*gmu[0]) / 2
		xt1 := (a*gq[1] + b*gmu[1]) / 2
		xt2 := (a*gq[2] + b*gmu[2]) / 2
		xt3 := (a*gq[3] + b*gmu[3]) / 2
		dq0, dm0 := xt0-q[0], xt0-mu[0]
		dq1, dm1 := xt1-q[1], xt1-mu[1]
		dq2, dm2 := xt2-q[2], xt2-mu[2]
		dq3, dm3 := xt3-q[3], xt3-mu[3]
		dQ += dq0 * dq0
		dQ += dq1 * dq1
		dQ += dq2 * dq2
		dQ += dq3 * dq3
		dMu += dm0 * dm0
		dMu += dm1 * dm1
		dMu += dm2 * dm2
		dMu += dm3 * dm3
		gq, gmu, q, mu = gq[4:], gmu[4:], q[4:], mu[4:]
	}
	for i := 0; i < len(gq) && i < len(gmu) && i < len(q) && i < len(mu); i++ {
		xt := (a*gq[i] + b*gmu[i]) / 2
		dq := xt - q[i]
		dm := xt - mu[i]
		dQ += dq * dq
		dMu += dm * dm
	}
	return dQ, dMu
}

// ---------------------------------------------------------------------------
// Mahalanobis (uniform diagonal weight w)
// ---------------------------------------------------------------------------

// mahaSum computes the Mahalanobis sum in bregman.Distance's exact order:
// s += w·x² − w·y² − (2w)·y·(x−y), one ordered accumulator.
func mahaSum(w float64, x, y []float64) float64 {
	var s float64
	for len(x) >= 4 && len(y) >= 4 {
		s += w*x[0]*x[0] - w*y[0]*y[0] - 2*w*y[0]*(x[0]-y[0])
		s += w*x[1]*x[1] - w*y[1]*y[1] - 2*w*y[1]*(x[1]-y[1])
		s += w*x[2]*x[2] - w*y[2]*y[2] - 2*w*y[2]*(x[2]-y[2])
		s += w*x[3]*x[3] - w*y[3]*y[3] - 2*w*y[3]*(x[3]-y[3])
		x, y = x[4:], y[4:]
	}
	for i := 0; i < len(x) && i < len(y); i++ {
		s += w*x[i]*x[i] - w*y[i]*y[i] - 2*w*y[i]*(x[i]-y[i])
	}
	return s
}

// mahaPrep fills p1 = w·q² and p2 = (2w)·q, the query-side invariants of
// mahaSum (identical subexpressions, evaluated once per query).
func mahaPrep(w float64, p1, p2, q []float64) {
	for i := 0; i < len(p1) && i < len(p2) && i < len(q); i++ {
		p1[i] = w * q[i] * q[i]
		p2[i] = 2 * w * q[i]
	}
}

// mahaPrepSum is mahaSum with the query side read from mahaPrep's output.
func mahaPrepSum(w float64, x, q, p1, p2 []float64) float64 {
	var s float64
	for len(x) >= 4 && len(q) >= 4 && len(p1) >= 4 && len(p2) >= 4 {
		s += w*x[0]*x[0] - p1[0] - p2[0]*(x[0]-q[0])
		s += w*x[1]*x[1] - p1[1] - p2[1]*(x[1]-q[1])
		s += w*x[2]*x[2] - p1[2] - p2[2]*(x[2]-q[2])
		s += w*x[3]*x[3] - p1[3] - p2[3]*(x[3]-q[3])
		x, q, p1, p2 = x[4:], q[4:], p1[4:], p2[4:]
	}
	for i := 0; i < len(x) && i < len(q) && i < len(p1) && i < len(p2); i++ {
		s += w*x[i]*x[i] - p1[i] - p2[i]*(x[i]-q[i])
	}
	return s
}

// mahaGeo accumulates the fused geodesic divergences for φ(t) = w·t².
// w·xt² is evaluated once and reused across both sums (bit-identical CSE).
func mahaGeo(w float64, gq, gmu, q, mu []float64, theta float64) (dQ, dMu float64) {
	a, b := 1-theta, theta
	for i := 0; i < len(gq) && i < len(gmu) && i < len(q) && i < len(mu); i++ {
		xt := (a*gq[i] + b*gmu[i]) / (2 * w)
		qv, mv := q[i], mu[i]
		wxt2 := w * xt * xt
		dQ += wxt2 - w*qv*qv - 2*w*qv*(xt-qv)
		dMu += wxt2 - w*mv*mv - 2*w*mv*(xt-mv)
	}
	return dQ, dMu
}

// ---------------------------------------------------------------------------
// Itakura–Saito: φ(t) = −log t
// ---------------------------------------------------------------------------

func isSum(x, y []float64) float64 {
	var s float64
	for len(x) >= 4 && len(y) >= 4 {
		s += -math.Log(x[0]) - (-math.Log(y[0])) - (-1/y[0])*(x[0]-y[0])
		s += -math.Log(x[1]) - (-math.Log(y[1])) - (-1/y[1])*(x[1]-y[1])
		s += -math.Log(x[2]) - (-math.Log(y[2])) - (-1/y[2])*(x[2]-y[2])
		s += -math.Log(x[3]) - (-math.Log(y[3])) - (-1/y[3])*(x[3]-y[3])
		x, y = x[4:], y[4:]
	}
	for i := 0; i < len(x) && i < len(y); i++ {
		s += -math.Log(x[i]) - (-math.Log(y[i])) - (-1/y[i])*(x[i]-y[i])
	}
	return s
}

// isPrep fills p1 = −log q and p2 = −1/q.
func isPrep(p1, p2, q []float64) {
	for i := 0; i < len(p1) && i < len(p2) && i < len(q); i++ {
		p1[i] = -math.Log(q[i])
		p2[i] = -1 / q[i]
	}
}

func isPrepSum(x, q, p1, p2 []float64) float64 {
	var s float64
	for len(x) >= 4 && len(q) >= 4 && len(p1) >= 4 && len(p2) >= 4 {
		s += -math.Log(x[0]) - p1[0] - p2[0]*(x[0]-q[0])
		s += -math.Log(x[1]) - p1[1] - p2[1]*(x[1]-q[1])
		s += -math.Log(x[2]) - p1[2] - p2[2]*(x[2]-q[2])
		s += -math.Log(x[3]) - p1[3] - p2[3]*(x[3]-q[3])
		x, q, p1, p2 = x[4:], q[4:], p1[4:], p2[4:]
	}
	for i := 0; i < len(x) && i < len(q) && i < len(p1) && i < len(p2); i++ {
		s += -math.Log(x[i]) - p1[i] - p2[i]*(x[i]-q[i])
	}
	return s
}

// isGeo accumulates the fused geodesic divergences for φ(t) = −log t.
// gq/gmu are ∇f(q) = −1/q and ∇f(µ) = −1/µ, reused directly (the bits the
// serial expression recomputes); log xt is evaluated once per coordinate.
func isGeo(gq, gmu, q, mu []float64, theta float64) (dQ, dMu float64, ok bool) {
	a, b := 1-theta, theta
	for i := 0; i < len(gq) && i < len(gmu) && i < len(q) && i < len(mu); i++ {
		xt := -1 / (a*gq[i] + b*gmu[i])
		if math.IsInf(xt, 0) || math.IsNaN(xt) {
			return dQ, dMu, false
		}
		lxt := math.Log(xt)
		dQ += -lxt - (-math.Log(q[i])) - gq[i]*(xt-q[i])
		dMu += -lxt - (-math.Log(mu[i])) - gmu[i]*(xt-mu[i])
	}
	return dQ, dMu, true
}

// ---------------------------------------------------------------------------
// Exponential: φ(t) = eᵗ
// ---------------------------------------------------------------------------

func expSum(x, y []float64) float64 {
	var s float64
	for len(x) >= 4 && len(y) >= 4 {
		e0 := math.Exp(y[0])
		s += math.Exp(x[0]) - e0 - e0*(x[0]-y[0])
		e1 := math.Exp(y[1])
		s += math.Exp(x[1]) - e1 - e1*(x[1]-y[1])
		e2 := math.Exp(y[2])
		s += math.Exp(x[2]) - e2 - e2*(x[2]-y[2])
		e3 := math.Exp(y[3])
		s += math.Exp(x[3]) - e3 - e3*(x[3]-y[3])
		x, y = x[4:], y[4:]
	}
	for i := 0; i < len(x) && i < len(y); i++ {
		ey := math.Exp(y[i])
		s += math.Exp(x[i]) - ey - ey*(x[i]-y[i])
	}
	return s
}

// expPrep fills p1 = exp(q).
func expPrep(p1, q []float64) {
	for i := 0; i < len(p1) && i < len(q); i++ {
		p1[i] = math.Exp(q[i])
	}
}

func expPrepSum(x, q, p1 []float64) float64 {
	var s float64
	for len(x) >= 4 && len(q) >= 4 && len(p1) >= 4 {
		s += math.Exp(x[0]) - p1[0] - p1[0]*(x[0]-q[0])
		s += math.Exp(x[1]) - p1[1] - p1[1]*(x[1]-q[1])
		s += math.Exp(x[2]) - p1[2] - p1[2]*(x[2]-q[2])
		s += math.Exp(x[3]) - p1[3] - p1[3]*(x[3]-q[3])
		x, q, p1 = x[4:], q[4:], p1[4:]
	}
	for i := 0; i < len(x) && i < len(q) && i < len(p1); i++ {
		s += math.Exp(x[i]) - p1[i] - p1[i]*(x[i]-q[i])
	}
	return s
}

// expGeo accumulates the fused geodesic divergences for φ(t) = eᵗ. The
// query/center exponentials eq = e^q and eµ = e^µ are exactly gq and gmu
// (∇f = exp), so the two heaviest transcendentals per coordinate read
// straight from the gradient vectors the projector already holds.
func expGeo(gq, gmu, q, mu []float64, theta float64) (dQ, dMu float64, ok bool) {
	a, b := 1-theta, theta
	for i := 0; i < len(gq) && i < len(gmu) && i < len(q) && i < len(mu); i++ {
		xt := math.Log(a*gq[i] + b*gmu[i])
		if math.IsInf(xt, 0) || math.IsNaN(xt) {
			return dQ, dMu, false
		}
		ext := math.Exp(xt)
		eq := gq[i]
		em := gmu[i]
		dQ += ext - eq - eq*(xt-q[i])
		dMu += ext - em - em*(xt-mu[i])
	}
	return dQ, dMu, true
}

// ---------------------------------------------------------------------------
// Generalized KL: φ(t) = t·log t − t
// ---------------------------------------------------------------------------

func gklSum(x, y []float64) float64 {
	var s float64
	for len(x) >= 4 && len(y) >= 4 {
		l0 := math.Log(y[0])
		s += (x[0]*math.Log(x[0]) - x[0]) - (y[0]*l0 - y[0]) - l0*(x[0]-y[0])
		l1 := math.Log(y[1])
		s += (x[1]*math.Log(x[1]) - x[1]) - (y[1]*l1 - y[1]) - l1*(x[1]-y[1])
		l2 := math.Log(y[2])
		s += (x[2]*math.Log(x[2]) - x[2]) - (y[2]*l2 - y[2]) - l2*(x[2]-y[2])
		l3 := math.Log(y[3])
		s += (x[3]*math.Log(x[3]) - x[3]) - (y[3]*l3 - y[3]) - l3*(x[3]-y[3])
		x, y = x[4:], y[4:]
	}
	for i := 0; i < len(x) && i < len(y); i++ {
		ly := math.Log(y[i])
		s += (x[i]*math.Log(x[i]) - x[i]) - (y[i]*ly - y[i]) - ly*(x[i]-y[i])
	}
	return s
}

// gklPrep fills p1 = q·log q − q and p2 = log q.
func gklPrep(p1, p2, q []float64) {
	for i := 0; i < len(p1) && i < len(p2) && i < len(q); i++ {
		lq := math.Log(q[i])
		p1[i] = q[i]*lq - q[i]
		p2[i] = lq
	}
}

func gklPrepSum(x, q, p1, p2 []float64) float64 {
	var s float64
	for len(x) >= 4 && len(q) >= 4 && len(p1) >= 4 && len(p2) >= 4 {
		s += (x[0]*math.Log(x[0]) - x[0]) - p1[0] - p2[0]*(x[0]-q[0])
		s += (x[1]*math.Log(x[1]) - x[1]) - p1[1] - p2[1]*(x[1]-q[1])
		s += (x[2]*math.Log(x[2]) - x[2]) - p1[2] - p2[2]*(x[2]-q[2])
		s += (x[3]*math.Log(x[3]) - x[3]) - p1[3] - p2[3]*(x[3]-q[3])
		x, q, p1, p2 = x[4:], q[4:], p1[4:], p2[4:]
	}
	for i := 0; i < len(x) && i < len(q) && i < len(p1) && i < len(p2); i++ {
		s += (x[i]*math.Log(x[i]) - x[i]) - p1[i] - p2[i]*(x[i]-q[i])
	}
	return s
}

// gklGeo accumulates the fused geodesic divergences for φ(t) = t·log t − t.
// log q and log µ are exactly gq and gmu (∇f = log), so each coordinate
// costs one exp and one log instead of six transcendentals.
func gklGeo(gq, gmu, q, mu []float64, theta float64) (dQ, dMu float64, ok bool) {
	a, b := 1-theta, theta
	for i := 0; i < len(gq) && i < len(gmu) && i < len(q) && i < len(mu); i++ {
		xt := math.Exp(a*gq[i] + b*gmu[i])
		if math.IsInf(xt, 0) || math.IsNaN(xt) {
			return dQ, dMu, false
		}
		qv, mv := q[i], mu[i]
		lq := gq[i]
		lm := gmu[i]
		phiX := xt*math.Log(xt) - xt
		dQ += phiX - (qv*lq - qv) - lq*(xt-qv)
		dMu += phiX - (mv*lm - mv) - lm*(xt-mv)
	}
	return dQ, dMu, true
}

// ---------------------------------------------------------------------------
// Shannon entropy: φ(t) = t·log t
// ---------------------------------------------------------------------------

func shannonSum(x, y []float64) float64 {
	var s float64
	for len(x) >= 4 && len(y) >= 4 {
		l0 := math.Log(y[0])
		s += x[0]*math.Log(x[0]) - y[0]*l0 - (l0+1)*(x[0]-y[0])
		l1 := math.Log(y[1])
		s += x[1]*math.Log(x[1]) - y[1]*l1 - (l1+1)*(x[1]-y[1])
		l2 := math.Log(y[2])
		s += x[2]*math.Log(x[2]) - y[2]*l2 - (l2+1)*(x[2]-y[2])
		l3 := math.Log(y[3])
		s += x[3]*math.Log(x[3]) - y[3]*l3 - (l3+1)*(x[3]-y[3])
		x, y = x[4:], y[4:]
	}
	for i := 0; i < len(x) && i < len(y); i++ {
		ly := math.Log(y[i])
		s += x[i]*math.Log(x[i]) - y[i]*ly - (ly+1)*(x[i]-y[i])
	}
	return s
}

// shannonPrep fills p1 = q·log q and p2 = log q + 1.
func shannonPrep(p1, p2, q []float64) {
	for i := 0; i < len(p1) && i < len(p2) && i < len(q); i++ {
		lq := math.Log(q[i])
		p1[i] = q[i] * lq
		p2[i] = lq + 1
	}
}

func shannonPrepSum(x, q, p1, p2 []float64) float64 {
	var s float64
	for len(x) >= 4 && len(q) >= 4 && len(p1) >= 4 && len(p2) >= 4 {
		s += x[0]*math.Log(x[0]) - p1[0] - p2[0]*(x[0]-q[0])
		s += x[1]*math.Log(x[1]) - p1[1] - p2[1]*(x[1]-q[1])
		s += x[2]*math.Log(x[2]) - p1[2] - p2[2]*(x[2]-q[2])
		s += x[3]*math.Log(x[3]) - p1[3] - p2[3]*(x[3]-q[3])
		x, q, p1, p2 = x[4:], q[4:], p1[4:], p2[4:]
	}
	for i := 0; i < len(x) && i < len(q) && i < len(p1) && i < len(p2); i++ {
		s += x[i]*math.Log(x[i]) - p1[i] - p2[i]*(x[i]-q[i])
	}
	return s
}

// shannonGeo accumulates the fused geodesic divergences for φ(t) = t·log t.
// log q and log µ are each computed once per coordinate and shared between
// the φ term and the (log+1) gradient factor (bit-identical CSE).
func shannonGeo(gq, gmu, q, mu []float64, theta float64) (dQ, dMu float64, ok bool) {
	a, b := 1-theta, theta
	for i := 0; i < len(gq) && i < len(gmu) && i < len(q) && i < len(mu); i++ {
		xt := math.Exp(a*gq[i] + b*gmu[i] - 1)
		if math.IsInf(xt, 0) || math.IsNaN(xt) {
			return dQ, dMu, false
		}
		qv, mv := q[i], mu[i]
		lq := math.Log(qv)
		lm := math.Log(mv)
		phiX := xt * math.Log(xt)
		dQ += phiX - qv*lq - (lq+1)*(xt-qv)
		dMu += phiX - mv*lm - (lm+1)*(xt-mv)
	}
	return dQ, dMu, true
}

// ---------------------------------------------------------------------------
// Burg entropy: φ(t) = −log t + t − 1
// ---------------------------------------------------------------------------

func burgSum(x, y []float64) float64 {
	var s float64
	for len(x) >= 4 && len(y) >= 4 {
		s += (-math.Log(x[0]) + x[0] - 1) - (-math.Log(y[0]) + y[0] - 1) - (1-1/y[0])*(x[0]-y[0])
		s += (-math.Log(x[1]) + x[1] - 1) - (-math.Log(y[1]) + y[1] - 1) - (1-1/y[1])*(x[1]-y[1])
		s += (-math.Log(x[2]) + x[2] - 1) - (-math.Log(y[2]) + y[2] - 1) - (1-1/y[2])*(x[2]-y[2])
		s += (-math.Log(x[3]) + x[3] - 1) - (-math.Log(y[3]) + y[3] - 1) - (1-1/y[3])*(x[3]-y[3])
		x, y = x[4:], y[4:]
	}
	for i := 0; i < len(x) && i < len(y); i++ {
		s += (-math.Log(x[i]) + x[i] - 1) - (-math.Log(y[i]) + y[i] - 1) - (1-1/y[i])*(x[i]-y[i])
	}
	return s
}

// burgPrep fills p1 = −log q + q − 1 and p2 = 1 − 1/q.
func burgPrep(p1, p2, q []float64) {
	for i := 0; i < len(p1) && i < len(p2) && i < len(q); i++ {
		p1[i] = -math.Log(q[i]) + q[i] - 1
		p2[i] = 1 - 1/q[i]
	}
}

func burgPrepSum(x, q, p1, p2 []float64) float64 {
	var s float64
	for len(x) >= 4 && len(q) >= 4 && len(p1) >= 4 && len(p2) >= 4 {
		s += (-math.Log(x[0]) + x[0] - 1) - p1[0] - p2[0]*(x[0]-q[0])
		s += (-math.Log(x[1]) + x[1] - 1) - p1[1] - p2[1]*(x[1]-q[1])
		s += (-math.Log(x[2]) + x[2] - 1) - p1[2] - p2[2]*(x[2]-q[2])
		s += (-math.Log(x[3]) + x[3] - 1) - p1[3] - p2[3]*(x[3]-q[3])
		x, q, p1, p2 = x[4:], q[4:], p1[4:], p2[4:]
	}
	for i := 0; i < len(x) && i < len(q) && i < len(p1) && i < len(p2); i++ {
		s += (-math.Log(x[i]) + x[i] - 1) - p1[i] - p2[i]*(x[i]-q[i])
	}
	return s
}

// burgGeo accumulates the fused geodesic divergences for φ(t)=−log t+t−1.
// The gradient factors (1 − 1/q) and (1 − 1/µ) are exactly gq and gmu;
// −log xt + xt − 1 is evaluated once and reused across both sums.
func burgGeo(gq, gmu, q, mu []float64, theta float64) (dQ, dMu float64, ok bool) {
	a, b := 1-theta, theta
	for i := 0; i < len(gq) && i < len(gmu) && i < len(q) && i < len(mu); i++ {
		xt := 1 / (1 - (a*gq[i] + b*gmu[i]))
		if math.IsInf(xt, 0) || math.IsNaN(xt) {
			return dQ, dMu, false
		}
		qv, mv := q[i], mu[i]
		phiX := -math.Log(xt) + xt - 1
		dQ += phiX - (-math.Log(qv) + qv - 1) - gq[i]*(xt-qv)
		dMu += phiX - (-math.Log(mv) + mv - 1) - gmu[i]*(xt-mv)
	}
	return dQ, dMu, true
}

// ---------------------------------------------------------------------------
// Element-wise gradient maps (dst pre-sliced to len(y) by kernel.go).
// ---------------------------------------------------------------------------

func gradScaleLoop(dst, y []float64, c float64) {
	for len(dst) >= 4 && len(y) >= 4 {
		dst[0] = c * y[0]
		dst[1] = c * y[1]
		dst[2] = c * y[2]
		dst[3] = c * y[3]
		dst, y = dst[4:], y[4:]
	}
	for i := 0; i < len(dst) && i < len(y); i++ {
		dst[i] = c * y[i]
	}
}

func gradInvScaleLoop(dst, g []float64, c float64) {
	for len(dst) >= 4 && len(g) >= 4 {
		dst[0] = g[0] / c
		dst[1] = g[1] / c
		dst[2] = g[2] / c
		dst[3] = g[3] / c
		dst, g = dst[4:], g[4:]
	}
	for i := 0; i < len(dst) && i < len(g); i++ {
		dst[i] = g[i] / c
	}
}

func gradNegInvLoop(dst, y []float64) {
	for len(dst) >= 4 && len(y) >= 4 {
		dst[0] = -1 / y[0]
		dst[1] = -1 / y[1]
		dst[2] = -1 / y[2]
		dst[3] = -1 / y[3]
		dst, y = dst[4:], y[4:]
	}
	for i := 0; i < len(dst) && i < len(y); i++ {
		dst[i] = -1 / y[i]
	}
}

func gradExpLoop(dst, y []float64) {
	for i := 0; i < len(dst) && i < len(y); i++ {
		dst[i] = math.Exp(y[i])
	}
}

func gradLogLoop(dst, y []float64) {
	for i := 0; i < len(dst) && i < len(y); i++ {
		dst[i] = math.Log(y[i])
	}
}

func gradLogP1Loop(dst, y []float64) {
	for i := 0; i < len(dst) && i < len(y); i++ {
		dst[i] = math.Log(y[i]) + 1
	}
}

func gradExpM1Loop(dst, g []float64) {
	for i := 0; i < len(dst) && i < len(g); i++ {
		dst[i] = math.Exp(g[i] - 1)
	}
}

func gradBurgLoop(dst, y []float64) {
	for i := 0; i < len(dst) && i < len(y); i++ {
		dst[i] = 1 - 1/y[i]
	}
}

func gradBurgInvLoop(dst, g []float64) {
	for i := 0; i < len(dst) && i < len(g); i++ {
		dst[i] = 1 / (1 - g[i])
	}
}

// ---------------------------------------------------------------------------
// Block drivers: row-major streaming with the query side precomputed.
// The caller guarantees len(data) == len(out)·len(q); the row is carved
// off the front of data each iteration, which the prove-bounds pass
// understands without a check.
// ---------------------------------------------------------------------------

func l2Block(data, q, out []float64) {
	for i := 0; i < len(out); i++ {
		if len(data) < len(q) {
			break
		}
		row := data[:len(q):len(q)]
		data = data[len(q):]
		out[i] = l2Sum(row, q)
	}
}

func mahaBlock(w float64, data, q, p1, p2, out []float64) {
	for i := 0; i < len(out); i++ {
		if len(data) < len(q) {
			break
		}
		row := data[:len(q):len(q)]
		data = data[len(q):]
		s := mahaPrepSum(w, row, q, p1, p2)
		if s < 0 {
			s = 0
		}
		out[i] = s
	}
}

func isBlock(data, q, p1, p2, out []float64) {
	for i := 0; i < len(out); i++ {
		if len(data) < len(q) {
			break
		}
		row := data[:len(q):len(q)]
		data = data[len(q):]
		s := isPrepSum(row, q, p1, p2)
		if s < 0 {
			s = 0
		}
		out[i] = s
	}
}

func expBlock(data, q, p1, out []float64) {
	for i := 0; i < len(out); i++ {
		if len(data) < len(q) {
			break
		}
		row := data[:len(q):len(q)]
		data = data[len(q):]
		s := expPrepSum(row, q, p1)
		if s < 0 {
			s = 0
		}
		out[i] = s
	}
}

func gklBlock(data, q, p1, p2, out []float64) {
	for i := 0; i < len(out); i++ {
		if len(data) < len(q) {
			break
		}
		row := data[:len(q):len(q)]
		data = data[len(q):]
		s := gklPrepSum(row, q, p1, p2)
		if s < 0 {
			s = 0
		}
		out[i] = s
	}
}

func shannonBlock(data, q, p1, p2, out []float64) {
	for i := 0; i < len(out); i++ {
		if len(data) < len(q) {
			break
		}
		row := data[:len(q):len(q)]
		data = data[len(q):]
		s := shannonPrepSum(row, q, p1, p2)
		if s < 0 {
			s = 0
		}
		out[i] = s
	}
}

func burgBlock(data, q, p1, p2, out []float64) {
	for i := 0; i < len(out); i++ {
		if len(data) < len(q) {
			break
		}
		row := data[:len(q):len(q)]
		data = data[len(q):]
		s := burgPrepSum(row, q, p1, p2)
		if s < 0 {
			s = 0
		}
		out[i] = s
	}
}
