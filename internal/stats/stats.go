// Package stats provides the distribution-modelling substrate the paper's
// approximate solution depends on (§8, Proposition 1): histograms, a
// least-squares normal fit to a histogram (the footnote's recipe), and
// empirical CDFs with inverse lookup. The approximate coefficient c needs a
// CDF Ψ of the random variable βxy and its inverse Ψ⁻¹.
package stats

import (
	"errors"
	"math"
	"sort"

	"brepartition/internal/vecmath"
)

// ErrEmpty is returned when a distribution is fit on no samples.
var ErrEmpty = errors.New("stats: no samples")

// Dist is a one-dimensional distribution with a CDF and its inverse, the
// interface Proposition 1 consumes.
type Dist interface {
	// CDF returns P(X ≤ x).
	CDF(x float64) float64
	// Quantile returns inf{x : CDF(x) ≥ p} for p ∈ [0,1].
	Quantile(p float64) float64
}

// ---------------------------------------------------------------------------
// Histogram.
// ---------------------------------------------------------------------------

// Histogram is an equal-width histogram over [Lo, Hi] with len(Counts) bins.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	N      int
}

// NewHistogram builds an equal-width histogram with bins buckets from the
// samples. Returns ErrEmpty for no samples; a degenerate all-equal sample
// produces a single-bin histogram of width 1 centred on the value.
func NewHistogram(samples []float64, bins int) (*Histogram, error) {
	if len(samples) == 0 {
		return nil, ErrEmpty
	}
	if bins <= 0 {
		bins = 1
	}
	lo, hi := vecmath.MinMax(samples)
	if lo == hi {
		lo, hi = lo-0.5, hi+0.5
	}
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins), N: len(samples)}
	w := (hi - lo) / float64(bins)
	for _, v := range samples {
		i := int((v - lo) / w)
		if i < 0 {
			i = 0
		}
		if i >= bins {
			i = bins - 1
		}
		h.Counts[i]++
	}
	return h, nil
}

// BinWidth returns the width of each bucket.
func (h *Histogram) BinWidth() float64 { return (h.Hi - h.Lo) / float64(len(h.Counts)) }

// Centers returns the bucket midpoints.
func (h *Histogram) Centers() []float64 {
	w := h.BinWidth()
	out := make([]float64, len(h.Counts))
	for i := range out {
		out[i] = h.Lo + (float64(i)+0.5)*w
	}
	return out
}

// Densities returns the normalized density estimate per bucket.
func (h *Histogram) Densities() []float64 {
	w := h.BinWidth()
	out := make([]float64, len(h.Counts))
	for i, c := range h.Counts {
		out[i] = float64(c) / (float64(h.N) * w)
	}
	return out
}

// ---------------------------------------------------------------------------
// Normal distribution, with two fitting routes.
// ---------------------------------------------------------------------------

// Normal is a Gaussian distribution N(Mu, Sigma²).
type Normal struct {
	Mu, Sigma float64
}

// CDF returns Φ((x−µ)/σ).
func (n Normal) CDF(x float64) float64 {
	if n.Sigma <= 0 {
		if x < n.Mu {
			return 0
		}
		return 1
	}
	return vecmath.NormalCDF((x - n.Mu) / n.Sigma)
}

// Quantile returns µ + σ·Φ⁻¹(p).
func (n Normal) Quantile(p float64) float64 {
	if n.Sigma <= 0 {
		return n.Mu
	}
	return n.Mu + n.Sigma*vecmath.NormalQuantile(p)
}

// PDF returns the Gaussian density at x.
func (n Normal) PDF(x float64) float64 {
	if n.Sigma <= 0 {
		return 0
	}
	z := (x - n.Mu) / n.Sigma
	return math.Exp(-z*z/2) / (n.Sigma * math.Sqrt(2*math.Pi))
}

// FitNormalMoments fits N(µ,σ²) by the sample mean and standard deviation.
func FitNormalMoments(samples []float64) (Normal, error) {
	if len(samples) == 0 {
		return Normal{}, ErrEmpty
	}
	mu := vecmath.Mean(samples)
	sigma := math.Sqrt(vecmath.Variance(samples))
	return Normal{Mu: mu, Sigma: sigma}, nil
}

// FitNormalHistogramLS implements the paper's footnote: build a histogram of
// the samples and fit a normal density to the bucket densities by least
// squares. The moments fit seeds a Gauss–Newton refinement of (µ, σ); if the
// refinement diverges the seed is returned.
func FitNormalHistogramLS(samples []float64, bins int) (Normal, error) {
	seed, err := FitNormalMoments(samples)
	if err != nil {
		return Normal{}, err
	}
	if seed.Sigma == 0 {
		return seed, nil
	}
	h, err := NewHistogram(samples, bins)
	if err != nil {
		return Normal{}, err
	}
	xs, ys := h.Centers(), h.Densities()

	mu, sigma := seed.Mu, seed.Sigma
	for iter := 0; iter < 50; iter++ {
		// Residuals r_i = N(x_i; mu, sigma) − y_i; Jacobian wrt (mu, sigma).
		var jtj [2][2]float64
		var jtr [2]float64
		for i, x := range xs {
			n := Normal{Mu: mu, Sigma: sigma}
			p := n.PDF(x)
			z := (x - mu) / sigma
			dmu := p * z / sigma
			dsig := p * (z*z - 1) / sigma
			r := p - ys[i]
			jtj[0][0] += dmu * dmu
			jtj[0][1] += dmu * dsig
			jtj[1][0] += dmu * dsig
			jtj[1][1] += dsig * dsig
			jtr[0] += dmu * r
			jtr[1] += dsig * r
		}
		det := jtj[0][0]*jtj[1][1] - jtj[0][1]*jtj[1][0]
		if math.Abs(det) < 1e-18 {
			break
		}
		dMu := (jtj[1][1]*jtr[0] - jtj[0][1]*jtr[1]) / det
		dSig := (jtj[0][0]*jtr[1] - jtj[1][0]*jtr[0]) / det
		mu -= dMu
		sigma -= dSig
		if sigma <= 0 || math.IsNaN(mu) || math.IsNaN(sigma) {
			return seed, nil
		}
		if math.Abs(dMu) < 1e-12 && math.Abs(dSig) < 1e-12 {
			break
		}
	}
	return Normal{Mu: mu, Sigma: sigma}, nil
}

// ---------------------------------------------------------------------------
// Empirical distribution.
// ---------------------------------------------------------------------------

// Empirical is the empirical CDF of a sample, used when no parametric form
// fits the βxy distribution well.
type Empirical struct {
	sorted []float64
}

// NewEmpirical builds an empirical CDF. The sample is copied and sorted.
func NewEmpirical(samples []float64) (*Empirical, error) {
	if len(samples) == 0 {
		return nil, ErrEmpty
	}
	s := vecmath.Clone(samples)
	sort.Float64s(s)
	return &Empirical{sorted: s}, nil
}

// CDF returns the fraction of samples ≤ x.
func (e *Empirical) CDF(x float64) float64 {
	i := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(e.sorted))
}

// Quantile returns the smallest sample value v with CDF(v) ≥ p, with linear
// interpolation between order statistics for interior p.
func (e *Empirical) Quantile(p float64) float64 {
	n := len(e.sorted)
	switch {
	case p <= 0:
		return e.sorted[0]
	case p >= 1:
		return e.sorted[n-1]
	}
	pos := p * float64(n-1)
	i := int(math.Floor(pos))
	frac := pos - float64(i)
	if i+1 >= n {
		return e.sorted[n-1]
	}
	return e.sorted[i]*(1-frac) + e.sorted[i+1]*frac
}

// Min and Max expose the sample range.
func (e *Empirical) Min() float64 { return e.sorted[0] }

// Max returns the largest sample.
func (e *Empirical) Max() float64 { return e.sorted[len(e.sorted)-1] }
