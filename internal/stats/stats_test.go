package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func normalSamples(n int, mu, sigma float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = mu + sigma*rng.NormFloat64()
	}
	return out
}

func TestHistogramCountsSum(t *testing.T) {
	s := normalSamples(5000, 0, 1, 1)
	h, err := NewHistogram(s, 32)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != len(s) {
		t.Fatalf("counts sum to %d, want %d", total, len(s))
	}
}

func TestHistogramEmpty(t *testing.T) {
	if _, err := NewHistogram(nil, 8); err != ErrEmpty {
		t.Fatalf("err = %v, want ErrEmpty", err)
	}
}

func TestHistogramDegenerate(t *testing.T) {
	h, err := NewHistogram([]float64{3, 3, 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if h.Lo >= h.Hi {
		t.Fatal("degenerate histogram must still have positive width")
	}
}

func TestHistogramDensitiesIntegrateToOne(t *testing.T) {
	s := normalSamples(2000, 5, 2, 2)
	h, _ := NewHistogram(s, 20)
	var integral float64
	for _, d := range h.Densities() {
		integral += d * h.BinWidth()
	}
	if math.Abs(integral-1) > 1e-9 {
		t.Fatalf("density integral = %g", integral)
	}
}

func TestNormalCDFQuantileRoundTrip(t *testing.T) {
	n := Normal{Mu: 3, Sigma: 2}
	for _, p := range []float64{0.01, 0.1, 0.5, 0.9, 0.99} {
		x := n.Quantile(p)
		if got := n.CDF(x); math.Abs(got-p) > 1e-10 {
			t.Errorf("CDF(Quantile(%g)) = %g", p, got)
		}
	}
}

func TestNormalZeroSigma(t *testing.T) {
	n := Normal{Mu: 1, Sigma: 0}
	if n.CDF(0.999) != 0 || n.CDF(1.001) != 1 {
		t.Fatal("zero-sigma CDF should be a step at mu")
	}
	if n.Quantile(0.3) != 1 {
		t.Fatal("zero-sigma quantile should be mu")
	}
}

func TestFitNormalMoments(t *testing.T) {
	s := normalSamples(20000, -2, 3, 3)
	n, err := FitNormalMoments(s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(n.Mu+2) > 0.1 || math.Abs(n.Sigma-3) > 0.1 {
		t.Fatalf("fit = %+v, want mu=-2 sigma=3", n)
	}
}

func TestFitNormalMomentsEmpty(t *testing.T) {
	if _, err := FitNormalMoments(nil); err != ErrEmpty {
		t.Fatalf("err = %v", err)
	}
}

func TestFitNormalHistogramLSRecovers(t *testing.T) {
	s := normalSamples(20000, 4, 1.5, 4)
	n, err := FitNormalHistogramLS(s, 40)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(n.Mu-4) > 0.15 || math.Abs(n.Sigma-1.5) > 0.15 {
		t.Fatalf("LS fit = %+v, want mu=4 sigma=1.5", n)
	}
}

func TestFitNormalHistogramLSDegenerate(t *testing.T) {
	n, err := FitNormalHistogramLS([]float64{2, 2, 2, 2}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if n.Mu != 2 || n.Sigma != 0 {
		t.Fatalf("degenerate fit = %+v", n)
	}
}

func TestEmpiricalCDFMonotoneProperty(t *testing.T) {
	s := normalSamples(500, 0, 1, 5)
	e, err := NewEmpirical(s)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b float64) bool {
		if a > b {
			a, b = b, a
		}
		return e.CDF(a) <= e.CDF(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEmpiricalCDFExactValues(t *testing.T) {
	e, _ := NewEmpirical([]float64{1, 2, 3, 4})
	if got := e.CDF(0); got != 0 {
		t.Fatalf("CDF(0) = %g", got)
	}
	if got := e.CDF(2); got != 0.5 {
		t.Fatalf("CDF(2) = %g", got)
	}
	if got := e.CDF(4); got != 1 {
		t.Fatalf("CDF(4) = %g", got)
	}
	if got := e.CDF(2.5); got != 0.5 {
		t.Fatalf("CDF(2.5) = %g", got)
	}
}

func TestEmpiricalQuantileRange(t *testing.T) {
	e, _ := NewEmpirical([]float64{10, 20, 30})
	if e.Quantile(0) != 10 || e.Quantile(1) != 30 {
		t.Fatal("quantile endpoints wrong")
	}
	if q := e.Quantile(0.5); q != 20 {
		t.Fatalf("median = %g", q)
	}
	if e.Min() != 10 || e.Max() != 30 {
		t.Fatal("min/max wrong")
	}
}

func TestEmpiricalQuantileInterpolates(t *testing.T) {
	e, _ := NewEmpirical([]float64{0, 10})
	if q := e.Quantile(0.25); math.Abs(q-2.5) > 1e-12 {
		t.Fatalf("Quantile(0.25) = %g, want 2.5", q)
	}
}

func TestEmpiricalEmpty(t *testing.T) {
	if _, err := NewEmpirical(nil); err != ErrEmpty {
		t.Fatalf("err = %v", err)
	}
}

func TestEmpiricalQuantileCDFConsistency(t *testing.T) {
	s := normalSamples(1000, 0, 1, 6)
	e, _ := NewEmpirical(s)
	for _, p := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		x := e.Quantile(p)
		c := e.CDF(x)
		if math.Abs(c-p) > 0.01 {
			t.Errorf("CDF(Quantile(%g)) = %g", p, c)
		}
	}
}
