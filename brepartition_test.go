package brepartition_test

import (
	"math"
	"testing"

	"brepartition"
	"brepartition/internal/dataset"
)

func buildAPIIndex(t *testing.T) (*brepartition.Index, *dataset.Dataset) {
	t.Helper()
	spec, err := dataset.PaperSpec("audio", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	spec.N = 500
	spec.Dim = 32
	ds := dataset.MustGenerate(spec)
	div, err := brepartition.DivergenceByName(ds.Divergence)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := brepartition.Build(div, ds.Points, &brepartition.Options{M: 4})
	if err != nil {
		t.Fatal(err)
	}
	return idx, ds
}

func TestPublicAPISearchMatchesBruteForce(t *testing.T) {
	idx, ds := buildAPIIndex(t)
	div, _ := brepartition.DivergenceByName(ds.Divergence)
	for _, q := range dataset.SampleQueries(ds, 5, 9) {
		res, err := idx.Search(q, 8)
		if err != nil {
			t.Fatal(err)
		}
		want := brepartition.BruteForce(div, ds.Points, q, 8)
		got := brepartition.Neighbors(res)
		if len(got) != len(want) {
			t.Fatalf("got %d, want %d", len(got), len(want))
		}
		for i := range want {
			if math.Abs(got[i].Distance-want[i].Distance) > 1e-9*(1+want[i].Distance) {
				t.Fatalf("pos %d: %+v vs %+v", i, got[i], want[i])
			}
		}
	}
}

func TestPublicAPIDefaults(t *testing.T) {
	spec, _ := dataset.PaperSpec("sift", 0.01)
	spec.N = 400
	spec.Dim = 24
	ds := dataset.MustGenerate(spec)
	div, _ := brepartition.DivergenceByName("ed")
	idx, err := brepartition.Build(div, ds.Points, nil) // nil options: all defaults
	if err != nil {
		t.Fatal(err)
	}
	if idx.M() < 1 || idx.M() > idx.Dim() {
		t.Fatalf("derived M=%d", idx.M())
	}
	if idx.N() != 400 || idx.Dim() != 24 {
		t.Fatal("shape accessors wrong")
	}
	if idx.BuildTime().String() == "" {
		t.Fatal("build time missing")
	}
}

func TestPublicAPIApprox(t *testing.T) {
	idx, ds := buildAPIIndex(t)
	q := ds.Points[3]
	res, err := idx.SearchApprox(q, 5, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) == 0 {
		t.Fatal("no results")
	}
	if _, err := idx.SearchApprox(q, 5, 0); err == nil {
		t.Fatal("p=0 accepted")
	}
	if _, err := idx.SearchApprox(q, 5, 1.2); err == nil {
		t.Fatal("p>1 accepted")
	}
}

func TestPublicAPIDivergences(t *testing.T) {
	divs := []brepartition.Divergence{
		brepartition.SquaredEuclidean(),
		brepartition.ItakuraSaito(),
		brepartition.Exponential(),
		brepartition.GeneralizedKL(),
		brepartition.ShannonEntropy(),
		brepartition.BurgEntropy(),
		brepartition.Mahalanobis(2),
	}
	for _, d := range divs {
		if d.Name() == "" {
			t.Fatal("divergence without a name")
		}
	}
	if got := brepartition.Distance(brepartition.SquaredEuclidean(),
		[]float64{0, 0}, []float64{3, 4}); got != 25 {
		t.Fatalf("Distance = %g", got)
	}
}

func TestPublicAPIErrors(t *testing.T) {
	idx, _ := buildAPIIndex(t)
	if _, err := idx.Search([]float64{1, 2}, 5); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	if _, err := idx.Search(make([]float64, idx.Dim()), 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	div := brepartition.ItakuraSaito()
	if _, err := brepartition.Build(div, [][]float64{{1, -1}}, nil); err == nil {
		t.Fatal("out-of-domain point accepted")
	}
}
