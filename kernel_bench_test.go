// Benchmarks for the monomorphized divergence kernels and the zero-alloc
// search path introduced by the flat-SoA refactor. Run with -benchmem: the
// headline assertions are 0 allocs/op on BenchmarkSearchSteadyState* and
// the gap between BenchmarkKernelDistances* (concrete kernels over a flat
// block) and BenchmarkKernelDistancesInterface (the old per-coordinate
// bregman.Divergence dispatch over the same data).
package brepartition_test

import (
	"math/rand"
	"testing"

	"brepartition"
	"brepartition/internal/bregman"
	"brepartition/internal/kernel"
	"brepartition/internal/topk"
)

const (
	kernBenchN   = 2048
	kernBenchDim = 128
)

// kernBenchData builds a flat block plus a query strictly inside every
// registered divergence's domain.
func kernBenchData() (kernel.FlatBlock, []float64) {
	rng := rand.New(rand.NewSource(42))
	data := make([]float64, kernBenchN*kernBenchDim)
	for i := range data {
		data[i] = 0.1 + rng.Float64()
	}
	q := make([]float64, kernBenchDim)
	for i := range q {
		q[i] = 0.1 + rng.Float64()
	}
	return kernel.FlatBlock{Data: data, Dim: kernBenchDim, N: kernBenchN}, q
}

func benchmarkKernelDistances(b *testing.B, div brepartition.Divergence) {
	block, q := kernBenchData()
	kern := kernel.For(div)
	out := make([]float64, block.N)
	b.SetBytes(int64(block.N * block.Dim * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kern.DistancesTo(q, block, out)
	}
}

func BenchmarkKernelDistancesL2(b *testing.B) {
	benchmarkKernelDistances(b, brepartition.SquaredEuclidean())
}

func BenchmarkKernelDistancesIS(b *testing.B) {
	benchmarkKernelDistances(b, brepartition.ItakuraSaito())
}

func BenchmarkKernelDistancesExp(b *testing.B) {
	benchmarkKernelDistances(b, brepartition.Exponential())
}

func BenchmarkKernelDistancesGKL(b *testing.B) {
	benchmarkKernelDistances(b, brepartition.GeneralizedKL())
}

// BenchmarkKernelDistancesInterface is the pre-refactor reference: the
// same block, row by row, through bregman.Distance's per-coordinate
// interface dispatch. The ratio against BenchmarkKernelDistancesL2 is the
// devirtualization win.
func BenchmarkKernelDistancesInterface(b *testing.B) {
	block, q := kernBenchData()
	div := bregman.SquaredEuclidean{}
	out := make([]float64, block.N)
	b.SetBytes(int64(block.N * block.Dim * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := 0; r < block.N; r++ {
			out[r] = bregman.Distance(div, block.Row(r), q)
		}
	}
}

// BenchmarkSearchSteadyStateM8 is the zero-allocation query path: Search
// with a reused result buffer against the warm pooled context. The allocs
// column must read 0.
func BenchmarkSearchSteadyStateM8(b *testing.B) {
	idx, queries := benchIndex(b, 8, 16)
	var dst []topk.Item
	for _, q := range queries { // warm pool, session stamps, result buffer
		res, err := idx.SearchAppend(dst[:0], q, 20)
		if err != nil {
			b.Fatal(err)
		}
		dst = res.Items
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := idx.SearchAppend(dst[:0], queries[i%len(queries)], 20)
		if err != nil {
			b.Fatal(err)
		}
		dst = res.Items
	}
}
