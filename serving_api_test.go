package brepartition_test

import (
	"context"
	"math/rand"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"testing"

	"brepartition"
)

func servingPoints(n, d int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, d)
		base := 1.0 + 2*float64(i%5)
		for j := range p {
			p[j] = base + rng.Float64()
		}
		pts[i] = p
	}
	return pts
}

// servingFixture builds a durable index, serves it in-process, and
// returns the client-visible base URL plus an exact in-process oracle.
func servingFixture(t testing.TB, n int) (string, *brepartition.Index, [][]float64, *brepartition.Server) {
	t.Helper()
	root := filepath.Join(t.TempDir(), "durable")
	pts := servingPoints(n, 8, 7)
	dx, err := brepartition.BuildDurable(brepartition.ItakuraSaito(), pts, root,
		&brepartition.DurableOptions{Shards: 3, Core: brepartition.Options{M: 4, Seed: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if err := dx.Close(); err != nil {
		t.Fatal(err)
	}
	oracle, err := brepartition.Build(brepartition.ItakuraSaito(), pts, &brepartition.Options{M: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := brepartition.NewServer(root)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return ts.URL, oracle, pts, srv
}

func newTestClient(url string, binary bool) *brepartition.Client {
	if binary {
		return brepartition.NewClient(url, brepartition.WithBinary())
	}
	return brepartition.NewClient(url)
}

// TestServingPublicRoundTrip drives the whole public serving surface:
// NewServer over a durable root, NewClient over both protocols, search
// oracle equality, durable mutations, hot reload, and engine stats.
func TestServingPublicRoundTrip(t *testing.T) {
	url, oracle, pts, srv := servingFixture(t, 300)
	queries := servingPoints(8, 8, 55)
	ctx := context.Background()
	const k = 5

	for _, binary := range []bool{false, true} {
		c := newTestClient(url, binary)
		defer c.Close()
		for _, q := range queries {
			want, err := oracle.Search(q, k)
			if err != nil {
				t.Fatal(err)
			}
			got, err := c.Search(ctx, q, k)
			if err != nil {
				t.Fatalf("binary=%v: %v", binary, err)
			}
			if !reflect.DeepEqual(got, brepartition.Neighbors(want)) {
				t.Fatalf("binary=%v: remote != oracle", binary)
			}
		}
	}

	c := brepartition.NewClient(url)
	defer c.Close()
	id, err := c.Insert(ctx, pts[0])
	if err != nil {
		t.Fatal(err)
	}
	if id != len(pts) {
		t.Fatalf("insert id = %d, want %d", id, len(pts))
	}
	if err := c.Reload(ctx); err != nil {
		t.Fatal(err)
	}
	got, err := c.Search(ctx, pts[0], 2)
	if err != nil {
		t.Fatal(err)
	}
	// Both the original row and the inserted duplicate sit at distance 0.
	if got[0].Distance != 0 || got[1].Distance != 0 {
		t.Fatalf("inserted duplicate lost across reload: %+v", got)
	}
	if deleted, err := c.Delete(ctx, id); err != nil || !deleted {
		t.Fatalf("delete: %v %v", deleted, err)
	}
	if h, err := c.Health(ctx); err != nil || h.Live != len(pts) {
		t.Fatalf("health: %+v %v", h, err)
	}
	if st := srv.Stats(); st.Queries == 0 || st.Mutations != 2 {
		t.Fatalf("server stats: %+v", st)
	}
}
