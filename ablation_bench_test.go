// Ablation benchmarks for the design choices DESIGN.md calls out beyond
// the paper's own figures: PCCP versus contiguous partitioning, the
// θ-bisection depth of the BB-tree bound, the βxy distribution fit used by
// the approximate solution, and the Theorem-4 closed form versus a
// brute-force sweep of the cost model.
package brepartition_test

import (
	"testing"

	"brepartition/internal/approx"
	"brepartition/internal/bbtree"
	"brepartition/internal/bregman"
	"brepartition/internal/core"
	"brepartition/internal/dataset"
	"brepartition/internal/disk"
	"brepartition/internal/partition"
)

func ablationData(b *testing.B) (*dataset.Dataset, bregman.Divergence, [][]float64) {
	b.Helper()
	spec, err := dataset.PaperSpec("audio", 0.1)
	if err != nil {
		b.Fatal(err)
	}
	ds := dataset.MustGenerate(spec)
	div, err := bregman.ByName(ds.Divergence)
	if err != nil {
		b.Fatal(err)
	}
	return ds, div, dataset.SampleQueries(ds, 8, 5)
}

func benchSearchWith(b *testing.B, opts core.Options) {
	b.Helper()
	ds, div, queries := ablationData(b)
	if opts.Disk.PageSize == 0 {
		opts.Disk = disk.Config{PageSize: ds.PageSize}
	}
	ix, err := core.Build(div, ds.Points, opts)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.Search(queries[i%len(queries)], 20); err != nil {
			b.Fatal(err)
		}
	}
}

// PCCP versus equal/contiguous partitioning at the same M.
func BenchmarkAblationPCCP(b *testing.B) {
	benchSearchWith(b, core.Options{M: 16, Seed: 1})
}

func BenchmarkAblationNoPCCP(b *testing.B) {
	benchSearchWith(b, core.Options{M: 16, DisablePCCP: true, Seed: 1})
}

// θ-bisection depth: fewer iterations weaken the ball lower bound (more
// leaves visited) but cost less per node.
func BenchmarkAblationBisect4(b *testing.B) {
	benchSearchWith(b, core.Options{M: 16, Tree: bbtree.Config{BisectIters: 4}, Seed: 1})
}

func BenchmarkAblationBisect24(b *testing.B) {
	benchSearchWith(b, core.Options{M: 16, Tree: bbtree.Config{BisectIters: 24}, Seed: 1})
}

func BenchmarkAblationBisect48(b *testing.B) {
	benchSearchWith(b, core.Options{M: 16, Tree: bbtree.Config{BisectIters: 48}, Seed: 1})
}

// Leaf capacity C (§5.1 treats n/C as constant; this measures the reality).
func BenchmarkAblationLeaf16(b *testing.B) {
	benchSearchWith(b, core.Options{M: 16, Tree: bbtree.Config{LeafSize: 16}, Seed: 1})
}

func BenchmarkAblationLeaf256(b *testing.B) {
	benchSearchWith(b, core.Options{M: 16, Tree: bbtree.Config{LeafSize: 256}, Seed: 1})
}

// βxy distribution fit used by SearchApprox.
func benchApproxFit(b *testing.B, kind approx.FitKind) {
	b.Helper()
	ds, div, queries := ablationData(b)
	ix, err := core.Build(div, ds.Points, core.Options{
		M: 16, Seed: 1,
		Disk:   disk.Config{PageSize: ds.PageSize},
		Approx: approx.Config{Fit: kind},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.SearchApprox(queries[i%len(queries)], 20, 0.8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationApproxEmpirical(b *testing.B) {
	benchApproxFit(b, approx.FitEmpirical)
}

func BenchmarkAblationApproxNormalMoments(b *testing.B) {
	benchApproxFit(b, approx.FitNormalMoments)
}

func BenchmarkAblationApproxNormalHistogram(b *testing.B) {
	benchApproxFit(b, approx.FitNormalHistogram)
}

// Theorem-4 closed form versus exhaustive sweep of the fitted cost model.
func BenchmarkAblationOptimalMClosedForm(b *testing.B) {
	ds, div, _ := ablationData(b)
	model, err := partition.FitCostModel(div, ds.Points, 50, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.OptimalM(1)
	}
}

func BenchmarkAblationOptimalMSweep(b *testing.B) {
	ds, div, _ := ablationData(b)
	model, err := partition.FitCostModel(div, ds.Points, 50, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.SweepOptimal(1)
	}
}
