// Quickstart: build a BrePartition index over a small synthetic dataset
// and run an exact kNN query under the Itakura–Saito distance.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"

	"brepartition"
)

func main() {
	const (
		n   = 2000
		dim = 64
		k   = 5
	)
	rng := rand.New(rand.NewSource(42))

	// Positive-valued feature vectors (the IS distance's domain is (0,∞)):
	// three loose clusters of spectral-envelope-like rows.
	points := make([][]float64, n)
	for i := range points {
		base := 1.0 + 3*float64(i%3)
		p := make([]float64, dim)
		for j := range p {
			p[j] = base + 0.5*rng.Float64()
		}
		points[i] = p
	}

	// Build with defaults: the number of partitions M is derived by the
	// paper's Theorem-4 cost model and dimensions are assigned by PCCP.
	idx, err := brepartition.Build(brepartition.ItakuraSaito(), points, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d points of %d dims with M=%d partitions (built in %s)\n",
		idx.N(), idx.Dim(), idx.M(), idx.BuildTime())

	query := points[10]
	res, err := idx.Search(query, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query answered: %d candidates, %d page reads\n",
		res.Stats.Candidates, res.Stats.PageReads)
	for rank, nb := range brepartition.Neighbors(res) {
		fmt.Printf("  #%d  row=%-5d D_f=%.6f\n", rank+1, nb.ID, nb.Distance)
	}

	// Sanity: the first neighbour of a dataset row is the row itself.
	if res.Items[0].ID != 10 {
		log.Fatalf("expected row 10 first, got %d", res.Items[0].ID)
	}
	fmt.Println("exact result verified (query row ranked first).")

	// Zero-allocation steady state: SearchAppend reuses the previous
	// result's buffer, and every internal scratch comes from a pooled
	// per-query context — tight query loops allocate nothing per query.
	// (Reuse a dedicated buffer: recycling res.Items here would overwrite
	// the result we still compare against below.)
	var hot brepartition.Result
	for i := 0; i < 3; i++ {
		hot, err = idx.SearchAppend(hot.Items[:0], points[20+i], k)
		if err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("zero-alloc loop answered, last top hit row=%d\n", hot.Items[0].ID)

	// Batch mode: for query-heavy workloads, an Engine answers many
	// queries concurrently (bounded worker pool + shared result cache)
	// and aggregates service statistics. Results are identical to calling
	// Search in a loop.
	batch := make([][]float64, 64)
	for i := range batch {
		batch[i] = points[(i*7)%n]
	}
	eng := brepartition.NewEngine(idx, nil) // defaults: GOMAXPROCS workers
	results, err := eng.BatchSearch(batch, k)
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range results {
		if r.Items[0].ID != (i*7)%n {
			log.Fatalf("batch query %d: expected row %d first, got %d",
				i, (i*7)%n, r.Items[0].ID)
		}
	}
	st := eng.Stats()
	fmt.Printf("batch of %d queries on %d workers: %.0f QPS, p50=%s p99=%s, %d page reads\n",
		len(batch), eng.Workers(), st.QPS, st.P50, st.P99, st.PageReads)

	// The engine stays useful under mutation: Insert/Delete are safe while
	// searches run, and the result cache invalidates itself.
	if _, err := idx.Insert(points[0]); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after one insert: %d live points, index version %d\n",
		idx.Live(), idx.Version())

	// Scaling out: a ShardedIndex hash-partitions the points across
	// several independent indexes and answers scatter-gather — results
	// are bit-identical to the single index, mutations only lock the
	// owning shard, and an Engine drives it through the same interface.
	// (cmd/brebench's `sharded` experiment measures this at -shards N.)
	sharded, err := brepartition.BuildSharded(brepartition.ItakuraSaito(), points, 4, nil)
	if err != nil {
		log.Fatal(err)
	}
	sres, err := sharded.Search(query, k)
	if err != nil {
		log.Fatal(err)
	}
	for i := range sres.Items {
		if sres.Items[i] != res.Items[i] {
			log.Fatalf("sharded answer diverged at rank %d", i)
		}
	}
	fmt.Printf("sharded ×%d (sizes %v): identical top-%d verified\n",
		sharded.Shards(), sharded.ShardSizes(), k)

	// Sharded snapshots: WriteDir persists a manifest plus one file per
	// shard with checksums, committed by atomic rename; OpenSharded
	// verifies every checksum before trusting any shard.
	dir, err := os.MkdirTemp("", "brepartition-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	snap := filepath.Join(dir, "snapshot")
	if err := sharded.WriteDir(snap); err != nil {
		log.Fatal(err)
	}
	reloaded, err := brepartition.OpenSharded(snap)
	if err != nil {
		log.Fatal(err)
	}
	rres, err := reloaded.Search(query, k)
	if err != nil {
		log.Fatal(err)
	}
	if rres.Items[0] != sres.Items[0] {
		log.Fatal("snapshot round trip changed the answer")
	}
	fmt.Printf("snapshot round trip: %d points reloaded from %s, answers identical\n",
		reloaded.N(), snap)

	// Durability: a DurableIndex write-ahead-logs every mutation before
	// applying it, so Insert/Delete survive a crash — no explicit
	// snapshot dance needed. With the default policy each mutation is
	// fsynced (group-committed) before the call returns; a background
	// checkpointer folds the log into a snapshot to bound recovery time.
	durableRoot := filepath.Join(dir, "durable")
	dx, err := brepartition.BuildDurable(brepartition.ItakuraSaito(), points, durableRoot, nil)
	if err != nil {
		log.Fatal(err)
	}
	newID, err := dx.Insert(points[1])
	if err != nil {
		log.Fatal(err)
	}
	if _, err := dx.Delete(2); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("durable index: %d mutations logged (synced LSN %d), wal=%d bytes\n",
		dx.LastLSN(), dx.SyncedLSN(), dx.WALSize())

	// Simulate the crash: no Close, no snapshot — just reopen the
	// directory. Recovery loads the build-time snapshot and replays the
	// WAL tail; both acknowledged mutations are there.
	recovered, err := brepartition.OpenDurable(durableRoot, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer recovered.Close()
	rq, err := recovered.Search(points[1], 2)
	if err != nil {
		log.Fatal(err)
	}
	if rq.Items[0].ID != 1 && rq.Items[0].ID != newID {
		log.Fatalf("recovery lost the inserted point: %+v", rq.Items)
	}
	if recovered.Live() != n {
		log.Fatalf("recovered %d live points, want %d (insert + delete on %d)",
			recovered.Live(), n, n)
	}
	fmt.Printf("crash recovery: %d ids, %d live — every acknowledged mutation replayed\n",
		recovered.N(), recovered.Live())
	dx.Close()

	// An Engine drives the durable backend too, routing reads and writes
	// through one handle (mutations invalidate its cache automatically).
	deng := brepartition.NewEngine(recovered, nil)
	if _, err := deng.Insert(points[3]); err != nil {
		log.Fatal(err)
	}
	if _, err := deng.BatchSearch(batch[:8], k); err != nil {
		log.Fatal(err)
	}
	dst := deng.Stats()
	fmt.Printf("engine over durable index: %d queries, %d mutations routed\n",
		dst.Queries, dst.Mutations)
	deng.Close()
	recovered.Close()

	// Serving over the network: NewServer puts the durable directory
	// behind HTTP (request coalescing, admission control, /metrics,
	// hot /admin/reload — see cmd/breserved for the daemon) and a Client
	// talks to it with pooled connections; answers are bit-identical to
	// the in-process index. WithBinary switches from JSON to the compact
	// length-prefixed protocol.
	srv, err := brepartition.NewServer(durableRoot)
	if err != nil {
		log.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler()) // or http.ListenAndServe(":7600", srv.Handler())
	ctx := context.Background()
	cl := brepartition.NewClient(hs.URL, brepartition.WithBinary())
	before, err := cl.Search(ctx, query, k)
	if err != nil {
		log.Fatal(err)
	}
	if err := cl.Reload(ctx); err != nil { // hot checkpoint + swap, queries keep flowing
		log.Fatal(err)
	}
	after, err := cl.Search(ctx, query, k)
	if err != nil {
		log.Fatal(err)
	}
	if before[0] != after[0] {
		log.Fatal("hot reload changed the answer")
	}
	health, err := cl.Health(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("served over HTTP: top hit id=%d dist=%.4f from %d live points, identical across hot reload\n",
		after[0].ID, after[0].Distance, health.Live)
	cl.Close()
	hs.Close()
	srv.Close()

	// Multi-tenant collections: one process serves many independent
	// indexes. OpenCollections opens a registry root; collections are
	// created live — each with its own divergence and geometry — and the
	// client scopes to one with Collection(name). Tags attached at insert
	// time drive filtered search: the exact top-k over only matching
	// points, with the predicate pruning inside the index scan.
	colRoot := filepath.Join(dir, "collections")
	cs, err := brepartition.OpenCollections(colRoot)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := cs.Create("docs", brepartition.CollectionSpec{Divergence: "l2", Dim: dim}); err != nil {
		log.Fatal(err)
	}
	hs2 := httptest.NewServer(cs.Handler())
	mcl := brepartition.NewClient(hs2.URL)
	// A second collection under a different divergence, created remotely.
	if _, err := mcl.CreateCollection(ctx, "topics", brepartition.CollectionSpec{Divergence: "gkl", Dim: dim}); err != nil {
		log.Fatal(err)
	}
	docs := mcl.Collection("docs")
	for i, p := range points[:32] {
		tags := []string{"corpus"}
		if i%2 == 0 {
			tags = append(tags, "even")
		}
		if _, err := docs.InsertTagged(ctx, p, tags); err != nil {
			log.Fatal(err)
		}
	}
	topics := mcl.Collection("topics")
	for _, p := range points[:8] {
		if _, err := topics.Insert(ctx, p); err != nil {
			log.Fatal(err)
		}
	}
	all, err := docs.Search(ctx, query, 4)
	if err != nil {
		log.Fatal(err)
	}
	evens, err := docs.SearchFiltered(ctx, query, 4, brepartition.Filter{Tags: []string{"even"}})
	if err != nil {
		log.Fatal(err)
	}
	infos, err := mcl.Collections(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collections served: %d; docs top hit id=%d, filtered(even) top hit id=%d\n",
		len(infos), all[0].ID, evens[0].ID)
	mcl.Close()
	hs2.Close()
	cs.Close()
}
