// Approximate search: the §8 extension. Sweeps the probability guarantee p
// and reports the accuracy/efficiency trade-off — overall ratio (§9.8's
// metric), recall, I/O and time — against exact search on a standard-normal
// dataset like the paper's "Normal".
//
// Run with:
//
//	go run ./examples/approximate
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"brepartition"
)

const (
	n   = 5000
	dim = 200
	k   = 20
)

func main() {
	rng := rand.New(rand.NewSource(9))
	points := make([][]float64, n)
	for i := range points {
		p := make([]float64, dim)
		for j := range p {
			p[j] = rng.NormFloat64()
		}
		points[i] = p
	}

	// M is pinned to the paper's Table-4 value for its Normal dataset;
	// the approximate radii tighten per subspace, so the forest needs
	// genuinely low-dimensional subspaces to prune.
	idx, err := brepartition.Build(brepartition.Exponential(), points,
		&brepartition.Options{M: 25, LeafSize: 16})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d x %d standard-normal points, M=%d\n", n, dim, idx.M())

	queries := make([][]float64, 10)
	for i := range queries {
		src := points[rng.Intn(n)]
		queries[i] = append([]float64(nil), src...)
	}

	exactRes := make([]brepartition.Result, len(queries))
	start := time.Now()
	for i, q := range queries {
		exactRes[i], err = idx.Search(q, k)
		if err != nil {
			log.Fatal(err)
		}
	}
	exactTime := time.Since(start) / time.Duration(len(queries))

	var exactIO int
	for _, r := range exactRes {
		exactIO += r.Stats.PageReads
	}
	fmt.Printf("\n%-8s %-8s %-8s %-10s %-10s %s\n",
		"p", "OR", "recall", "meanIO", "meanTime", "c")
	fmt.Printf("%-8s %-8.4f %-8.2f %-10.1f %-10s %.3f\n",
		"exact", 1.0, 1.0, float64(exactIO)/float64(len(queries)),
		exactTime.Round(time.Microsecond), 1.0)

	for _, p := range []float64{0.95, 0.9, 0.8, 0.7, 0.5} {
		var io, orSum, recallSum, cSum float64
		start := time.Now()
		for i, q := range queries {
			res, err := idx.SearchApprox(q, k, p)
			if err != nil {
				log.Fatal(err)
			}
			io += float64(res.Stats.PageReads)
			cSum += res.Stats.ApproxC
			orSum += overallRatio(res, exactRes[i])
			recallSum += recall(res, exactRes[i])
		}
		elapsed := time.Since(start) / time.Duration(len(queries))
		q := float64(len(queries))
		fmt.Printf("%-8.2f %-8.4f %-8.2f %-10.1f %-10s %.3f\n",
			p, orSum/q, recallSum/q, io/q, elapsed.Round(time.Microsecond), cSum/q)
	}
	fmt.Println("\nsmaller p → tighter radii (smaller c) → less I/O, lower accuracy.")
}

func overallRatio(appr, exact brepartition.Result) float64 {
	kk := len(exact.Items)
	if len(appr.Items) < kk {
		kk = len(appr.Items)
	}
	var sum float64
	var cnt int
	for i := 0; i < kk; i++ {
		if exact.Items[i].Score <= 0 {
			continue
		}
		sum += appr.Items[i].Score / exact.Items[i].Score
		cnt++
	}
	if cnt == 0 {
		return 1
	}
	return sum / float64(cnt)
}

func recall(appr, exact brepartition.Result) float64 {
	want := map[int]bool{}
	for _, it := range exact.Items {
		want[it.ID] = true
	}
	hit := 0
	for _, it := range appr.Items {
		if want[it.ID] {
			hit++
		}
	}
	return float64(hit) / float64(len(exact.Items))
}
