// Speech frames: log-energy spectral envelopes (predominantly negative
// coordinates, as real log-domain audio features are) indexed under the
// exponential distance, demonstrating the effect of the number of
// partitions M on query cost — the paper's §5.1 trade-off.
//
// Run with:
//
//	go run ./examples/speech
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"brepartition"
)

const (
	frames = 3000
	dim    = 128
	k      = 8
)

// frame simulates a log-energy spectral envelope: a smooth formant curve
// per speaker plus jitter, all negative (log of energies < 1).
func frame(rng *rand.Rand, speaker int) []float64 {
	f := make([]float64, dim)
	formant := 0.3 + 0.05*float64(speaker%16)
	for j := range f {
		f[j] = -1.0 - formant*float64(j%13)/13.0 - 0.1*rng.Float64()
	}
	return f
}

func main() {
	rng := rand.New(rand.NewSource(3))
	data := make([][]float64, frames)
	for i := range data {
		data[i] = frame(rng, rng.Intn(16))
	}
	query := data[99]

	fmt.Println("M        build      query      candidates  pageReads")
	var exact []brepartition.Neighbor
	for _, m := range []int{1, 4, 16, 32, 64} {
		idx, err := brepartition.Build(brepartition.Exponential(), data,
			&brepartition.Options{M: m})
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		res, err := idx.Search(query, k)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		fmt.Printf("%-8d %-10s %-10s %-11d %d\n",
			m, idx.BuildTime(), elapsed.Round(time.Microsecond),
			res.Stats.Candidates, res.Stats.PageReads)

		nbs := brepartition.Neighbors(res)
		if exact == nil {
			exact = nbs
			continue
		}
		// Every M must return the same exact answer.
		for i := range exact {
			if nbs[i].ID != exact[i].ID {
				log.Fatalf("M=%d changed the exact result at rank %d", m, i)
			}
		}
	}
	fmt.Println("\nall partition counts returned identical exact results:")
	for rank, nb := range exact {
		fmt.Printf("  #%d frame=%d D=%.6f\n", rank+1, nb.ID, nb.Distance)
	}
}
