// Image retrieval: the paper's motivating scenario (§1). Simulated image
// colour-histogram descriptors are indexed under the Itakura–Saito
// distance, and a query image's near-duplicates are retrieved, comparing
// BrePartition's answer and I/O against a brute-force scan.
//
// Run with:
//
//	go run ./examples/imageretrieval
package main

import (
	"fmt"
	"log"
	"math/rand"

	"brepartition"
)

const (
	numImages = 4000
	bins      = 192 // histogram dimensionality, like the paper's Audio/Deep
	k         = 10
)

// histogram produces a normalized, strictly positive colour histogram:
// a mixture peak position per "scene type" plus noise, mimicking how
// images of the same scene yield near-identical histograms.
func histogram(rng *rand.Rand, scene int) []float64 {
	h := make([]float64, bins)
	peak := (scene*37 + 11) % bins
	for j := range h {
		dist := j - peak
		if dist < 0 {
			dist = -dist
		}
		h[j] = 0.05 + 2.0/(1.0+0.1*float64(dist*dist)) + 0.02*rng.Float64()
	}
	return h
}

func main() {
	rng := rand.New(rand.NewSource(7))

	images := make([][]float64, numImages)
	labels := make([]int, numImages)
	for i := range images {
		scene := rng.Intn(40)
		labels[i] = scene
		images[i] = histogram(rng, scene)
	}

	idx, err := brepartition.Build(brepartition.ItakuraSaito(), images, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d image histograms (%d bins), M=%d partitions\n",
		numImages, bins, idx.M())

	queryID := 123
	res, err := idx.Search(images[queryID], k)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("query image %d (scene %d): top-%d retrievals\n", queryID, labels[queryID], k)
	sameScene := 0
	for rank, nb := range brepartition.Neighbors(res) {
		match := ""
		if labels[nb.ID] == labels[queryID] {
			match = "  <- same scene"
			sameScene++
		}
		fmt.Printf("  #%-2d image=%-5d scene=%-3d D=%.5f%s\n",
			rank+1, nb.ID, labels[nb.ID], nb.Distance, match)
	}
	fmt.Printf("%d/%d retrievals share the query's scene\n", sameScene, k)
	fmt.Printf("I/O: %d page reads; filter %s + refine %s\n",
		res.Stats.PageReads, res.Stats.FilterTime, res.Stats.RefineTime)

	// Cross-check against brute force.
	truth := brepartition.BruteForce(brepartition.ItakuraSaito(), images, images[queryID], k)
	for i := range truth {
		if truth[i].ID != res.Items[i].ID {
			log.Fatalf("rank %d differs from brute force: %d vs %d",
				i+1, res.Items[i].ID, truth[i].ID)
		}
	}
	fmt.Println("verified against brute-force scan.")
}
