package brepartition_test

import (
	"math/rand"
	"path/filepath"
	"testing"

	"brepartition"
)

func durablePoints(n, dim int) [][]float64 {
	rng := rand.New(rand.NewSource(11))
	points := make([][]float64, n)
	for i := range points {
		p := make([]float64, dim)
		for j := range p {
			p[j] = 1.0 + 2*float64(i%3) + 0.25*rng.Float64()
		}
		points[i] = p
	}
	return points
}

// TestDurablePublicRoundTrip drives the public durable API end to end:
// build → mutate → crash-free reopen → identical answers, with an Engine
// routing both queries and mutations over the durable backend.
func TestDurablePublicRoundTrip(t *testing.T) {
	root := filepath.Join(t.TempDir(), "durable")
	points := durablePoints(400, 12)
	dx, err := brepartition.BuildDurable(brepartition.ItakuraSaito(), points, root, nil)
	if err != nil {
		t.Fatal(err)
	}

	// The durable index must answer exactly like a plain sharded build.
	sx, err := brepartition.BuildSharded(brepartition.ItakuraSaito(), points, dx.Shards(), nil)
	if err != nil {
		t.Fatal(err)
	}
	q := points[17]
	want, err := sx.Search(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	got, err := dx.Search(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Items {
		if got.Items[i] != want.Items[i] {
			t.Fatalf("durable answer diverged at rank %d: %v != %v", i, got.Items[i], want.Items[i])
		}
	}

	// Engine-routed mutations against the durable backend.
	eng := brepartition.NewEngine(dx, nil)
	extra := append([]float64(nil), q...)
	id, err := eng.Insert(extra)
	if err != nil {
		t.Fatal(err)
	}
	if id != 400 {
		t.Fatalf("engine insert assigned %d, want 400", id)
	}
	ok, err := eng.Delete(3)
	if err != nil || !ok {
		t.Fatalf("engine delete: %v %v", ok, err)
	}
	if st := eng.Stats(); st.Mutations != 2 {
		t.Fatalf("engine counted %d mutations, want 2", st.Mutations)
	}
	res, err := eng.BatchSearch([][]float64{q}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Items[0].Score != 0 {
		t.Fatalf("engine query over durable backend: %+v", res[0].Items)
	}

	if dx.SyncedLSN() != dx.LastLSN() || dx.LastLSN() == 0 {
		t.Fatalf("default policy must ack-sync every mutation: synced=%d last=%d",
			dx.SyncedLSN(), dx.LastLSN())
	}
	if err := dx.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := dx.Close(); err != nil {
		t.Fatal(err)
	}

	rx, err := brepartition.OpenDurable(root, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()
	if rx.N() != 401 || rx.Live() != 400 {
		t.Fatalf("recovered N=%d Live=%d, want 401/400", rx.N(), rx.Live())
	}
	rres, err := rx.Search(q, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rres.Items[0].Score != 0 {
		t.Fatalf("recovered index lost the engine-routed insert: %+v", rres.Items)
	}
	deleted := false
	for _, nb := range brepartition.Neighbors(rres) {
		if nb.ID == 3 {
			deleted = true
		}
	}
	if deleted {
		t.Fatal("recovered index serves the deleted id")
	}

	// And it keeps mutating durably after recovery.
	if _, err := rx.Insert(points[0]); err != nil {
		t.Fatal(err)
	}
	if err := rx.Sync(); err != nil {
		t.Fatal(err)
	}
}
